"""Figure 5: Redis GET throughput under MPK compartmentalization models.

Paper setup: four trust models — no isolation, {NW | rest},
{NW | sched | rest}, {NW+sched | rest} — under both MPK gate flavours
(shared and switched stacks), with 5/50/500-byte payloads.

Shape targets (paper): isolating only the network stack costs ~17% on
average; additionally isolating the scheduler costs 1.4x (shared
stacks) / 2.25x (switched stacks); co-locating the network stack with
the scheduler does *not* help, because the semaphores behind the wait
queues live in LibC, in yet another compartment; overhead drops as the
request size grows.
"""

from __future__ import annotations

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_redis_phase,
    start_redis,
)

LIBRARIES = ["libc", "netstack", "redis"]
MODELS = {
    "No Isol.": [["netstack", "sched", "alloc", "libc", "redis"]],
    "NW-only": [["netstack"], ["sched", "alloc", "libc", "redis"]],
    "NW/Sched/Rest": [["netstack"], ["sched"], ["alloc", "libc", "redis"]],
    "NW+Sched/Rest": [["netstack", "sched"], ["alloc", "libc", "redis"]],
}
PAYLOADS = (5, 50, 500)
REQUESTS = 300
WINDOW = 8


def measure(model: str, backend: str, payload: int, report=None) -> float:
    image = build_image(
        BuildConfig(
            libraries=LIBRARIES, compartments=MODELS[model], backend=backend
        )
    )
    start_redis(image)
    run_redis_phase(
        image,
        make_set_payloads(64, payload, keyspace=64),
        window=WINDOW,
        expect_prefix=b"+OK",
    )
    mreq_s = run_redis_phase(
        image, make_get_payloads(REQUESTS, 64), window=WINDOW, expect_prefix=b"$"
    ).mreq_s
    if report is not None:
        # Crossing counts + histograms per configuration, so a Mreq/s
        # regression in results.json can be pinned to a gate edge.
        report.metrics("fig5", f"{model}/{backend}/{payload}B", image)
    return mreq_s


_CASES = [("No Isol.", "none")] + [
    (model, backend)
    for model in ("NW-only", "NW/Sched/Rest", "NW+Sched/Rest")
    for backend in ("mpk-shared", "mpk-switched")
]


@pytest.mark.parametrize("model,backend", _CASES)
def test_fig5_redis_mpk(benchmark, report, model, backend):
    def run() -> dict[int, float]:
        return {
            payload: measure(model, backend, payload, report=report)
            for payload in PAYLOADS
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    stacks = {"none": "", "mpk-shared": " Sh.", "mpk-switched": " Sw."}[backend]
    cells = "  ".join(f"{p}B: {v:5.3f}" for p, v in series.items())
    report.row(
        "Fig5 Redis MPK models (GET Mreq/s)", f"{model + stacks:18s} {cells}"
    )
    report.value("fig5", f"{model}{stacks}", series)
    benchmark.extra_info["mreq_s"] = {str(k): v for k, v in series.items()}


def test_fig5_shape_claims(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    payload = 5
    base = measure("No Isol.", "none", payload)
    nw_sha = measure("NW-only", "mpk-shared", payload)
    three_sha = measure("NW/Sched/Rest", "mpk-shared", payload)
    three_sw = measure("NW/Sched/Rest", "mpk-switched", payload)
    merged_sha = measure("NW+Sched/Rest", "mpk-shared", payload)
    merged_sw = measure("NW+Sched/Rest", "mpk-switched", payload)

    # "Isolating only the network stack brings on average a 17%
    # slowdown" (we land slightly above; shape preserved).
    assert 1.05 < base / nw_sha < 1.5
    # "Also isolating the scheduler brings a 1.4x (shared stack) and
    # 2.25x (switched stack) slowdown."
    assert 1.25 < base / three_sha < 1.6
    assert 1.9 < base / three_sw < 2.7
    assert base / three_sw > base / three_sha + 0.5
    # "Putting the network stack and the scheduler in the same
    # compartment does not increase performance."
    assert abs(base / merged_sha - base / three_sha) < 0.08
    assert abs(base / merged_sw - base / three_sw) < 0.15

    # "The isolation overhead drops significantly when the request
    # size increases."
    big = measure("NW/Sched/Rest", "mpk-switched", 500)
    base_big = measure("No Isol.", "none", 500)
    assert base_big / big < base / three_sw
    report.row(
        "Fig5 Redis MPK models (GET Mreq/s)",
        "shape claims verified: NW-only < NW/Sched/Rest; Sw >> Sh; "
        "NW+Sched no better (semaphores live in LibC); overhead drops "
        "with request size",
    )
