"""Cluster benchmark: shard scaling, failover time, rebalance cost.

Three phases over the sharded redis cluster
(:mod:`repro.cluster`), all on simulated clocks:

- **scaling**: the same seeded SET/GET mix against 1, 2 and 3 durable
  shards; cluster throughput is total completed operations divided by
  the busiest machine's clock advance (machines run concurrently, so
  the slowest shard is the wall).  Acceptance: >= 1.7x aggregate
  SET/GET throughput going from 1 shard to 3.
- **failover**: a replicated cluster loses one primary mid-load; the
  follower is promoted with journal replay.  Reported: failover time
  (power-off to serving-ready on the follower's clock), replication
  lag, and the audit proving no acked write was lost.
- **rebalance**: a fourth shard joins a loaded three-shard cluster;
  reported: slots moved, keys/bytes migrated over the wire, and the
  migration's simulated duration.

Results go to ``benchmarks/BENCH_cluster.json``.  Runs standalone:

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.cluster.client import ClusterClient, verify_acked
from repro.cluster.cluster import RedisCluster

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_cluster.json"

SHARD_COUNTS = (1, 2, 3)
#: Acceptance floor for aggregate throughput scaling 1 -> 3 shards.
MIN_SCALING = 1.7


def _clock(cluster: RedisCluster) -> float:
    return max(node.clock_ns for node in cluster.fabric.alive_nodes())


def scaling_cell(shards: int, sets: int, gets: int, backend: str) -> dict:
    """Aggregate SET/GET throughput at a given shard count."""
    names = tuple("s%d" % index for index in range(shards))
    cluster = RedisCluster(shards=names, backend=backend, replicate=False)
    client = ClusterClient(cluster)
    start = _clock(cluster)
    for index in range(sets):
        client.set(b"key:%04d" % index, b"v%04d" % index * 8)
    client.drive()
    for index in range(gets):
        client.get(b"key:%04d" % (index % sets))
    client.drive()
    elapsed = _clock(cluster) - start
    ops = client.completed
    assert client.stats()["errors"] == 0
    return {
        "shards": shards,
        "backend": backend,
        "ops": ops,
        "acked_sets": len(client.acked),
        "elapsed_ns": elapsed,
        "throughput_ops_per_ms": ops / (elapsed / 1e6),
    }


def failover_cell(sets: int, backend: str, seed: int = 11) -> dict:
    """Kill one primary mid-load; measure promotion on the follower."""
    cluster = RedisCluster(
        shards=("s0", "s1", "s2"), backend=backend, replicate=True
    )
    client = ClusterClient(cluster)
    for index in range(sets):
        client.set(b"key:%04d" % index, b"v%04d" % index * 8)
    threshold = max(1, sets // 2)

    def mid_load() -> bool:
        client.pump()
        return len(client.acked) >= threshold or client.done

    cluster.fabric.run(until=mid_load)
    victim = sorted(cluster.shards)[seed % len(cluster.shards)]
    cluster.kill_primary(victim)
    report = cluster.promote(victim, recover=True)
    client.drive()
    audit = verify_acked(cluster, client)
    shard = cluster.shards[victim]
    return {
        "backend": backend,
        "victim": victim,
        "acked": len(client.acked),
        "failover_ns": shard.failover_ns,
        "restored": report.get("restored", 0),
        "retried_requests": client.retried,
        "replication_lag": cluster.replication_lag(),
        "no_acked_write_lost": audit["ok"],
    }


def rebalance_cell(sets: int, backend: str) -> dict:
    """Join a fourth shard into a loaded cluster; cost of convergence."""
    cluster = RedisCluster(
        shards=("s0", "s1", "s2"), backend=backend, replicate=False
    )
    client = ClusterClient(cluster)
    for index in range(sets):
        client.set(b"key:%04d" % index, b"v%04d" % index * 8)
    client.drive()
    report = cluster.add_shard("s3")
    audit = verify_acked(cluster, client)
    return {
        "backend": backend,
        "keys_before": len(client.acked),
        "moved_slots": len(report["moved_slots"]),
        "migrated_keys": report["migrated_keys"],
        "migrated_bytes": report["migrated_bytes"],
        "migration_ns": report["migration_ns"],
        "converged": audit["ok"],
    }


def run(sets: int, gets: int, backend: str) -> dict:
    scaling = [
        scaling_cell(count, sets, gets, backend) for count in SHARD_COUNTS
    ]
    single = scaling[0]["throughput_ops_per_ms"]
    tripled = scaling[-1]["throughput_ops_per_ms"]
    payload = {
        "backend": backend,
        "sets": sets,
        "gets": gets,
        "scaling": scaling,
        "scaling_1_to_3": tripled / single,
        "failover": failover_cell(sets, backend),
        "rebalance": rebalance_cell(sets, backend),
    }
    _check(payload)
    return payload


def _check(payload: dict) -> None:
    """The claims the numbers must support (smoke-level sanity)."""
    assert payload["scaling_1_to_3"] >= MIN_SCALING, payload["scaling_1_to_3"]
    # More shards never lose operations.
    for cell in payload["scaling"]:
        assert cell["ops"] == payload["sets"] + payload["gets"]
    failover = payload["failover"]
    assert failover["no_acked_write_lost"]
    assert failover["failover_ns"] > 0
    rebalance = payload["rebalance"]
    assert rebalance["converged"]
    assert rebalance["migrated_keys"] >= 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI (same phases, same checks)",
    )
    parser.add_argument("--backend", default="none")
    parser.add_argument("--json", default=str(BENCH_JSON))
    options = parser.parse_args(argv)
    if options.smoke:
        payload = run(sets=48, gets=48, backend=options.backend)
    else:
        payload = run(sets=240, gets=240, backend=options.backend)
    pathlib.Path(options.json).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    for cell in payload["scaling"]:
        print(
            f"shards={cell['shards']}  "
            f"{cell['throughput_ops_per_ms']:8.1f} ops/ms  "
            f"({cell['ops']} ops in {cell['elapsed_ns'] / 1e6:.2f} ms)"
        )
    print(f"scaling 1->3: {payload['scaling_1_to_3']:.2f}x")
    failover = payload["failover"]
    print(
        f"failover: {failover['failover_ns'] / 1e6:.2f} ms "
        f"(victim {failover['victim']}, acked {failover['acked']}, "
        f"no-acked-write-lost={failover['no_acked_write_lost']})"
    )
    rebalance = payload["rebalance"]
    print(
        f"rebalance: {rebalance['migrated_keys']} keys / "
        f"{rebalance['migrated_bytes']} bytes in "
        f"{rebalance['migration_ns'] / 1e6:.2f} ms "
        f"(moved {rebalance['moved_slots']} slots)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
