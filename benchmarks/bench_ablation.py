"""Ablations over FlexOS design choices (DESIGN.md §7).

Each ablation isolates one knob the paper's design discussion calls
out: gate register clearing, allocator placement under SH, semaphore
placement (the Fig. 5 anomaly), and greedy-vs-exact compartment
coloring.
"""

from __future__ import annotations

import itertools
import random
import time

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_iperf,
    run_redis_phase,
    start_redis,
)
from repro.core.coloring import (
    dsatur_coloring,
    exact_coloring,
    verify_coloring,
)

SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")


def _iperf_mbps(**kw) -> float:
    image = build_image(
        BuildConfig(libraries=["libc", "netstack", "iperf"], **kw)
    )
    return run_iperf(image, 256, 1 << 19).throughput_mbps


def _redis_mreq(**kw) -> float:
    image = build_image(
        BuildConfig(libraries=["libc", "netstack", "redis"], **kw)
    )
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(64, 50, keyspace=64), window=8,
        expect_prefix=b"+OK",
    )
    return run_redis_phase(
        image, make_get_payloads(300, 64), window=8, expect_prefix=b"$"
    ).mreq_s


def test_ablation_register_clearing(benchmark, report):
    """Clearing scratch registers at MPK crossings: security vs speed."""
    groups = [["netstack"], ["sched", "alloc", "libc", "iperf"]]

    def run():
        with_clear = _iperf_mbps(
            compartments=groups, backend="mpk-shared", clear_registers=True
        )
        without = _iperf_mbps(
            compartments=groups, backend="mpk-shared", clear_registers=False
        )
        return with_clear, without

    with_clear, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row(
        "Ablations",
        f"register clearing: on {with_clear:7.0f} Mb/s, off "
        f"{without:7.0f} Mb/s ({without / with_clear:4.2f}x faster off)",
    )
    assert without >= with_clear


def test_ablation_allocator_placement(benchmark, report):
    """Global vs per-compartment allocator under netstack SH (Fig. 4)."""
    groups = [["netstack"], ["sched", "alloc", "libc", "redis"]]

    def run():
        local = _redis_mreq(
            compartments=groups, backend="none",
            hardening={"netstack": SH_SUITE},
        )
        global_alloc = _redis_mreq(
            compartments=groups, backend="none",
            hardening={"netstack": SH_SUITE}, allocator_policy="global",
        )
        return local, global_alloc

    local, global_alloc = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row(
        "Ablations",
        f"allocator under SH: local {local:5.3f} Mreq/s, global "
        f"{global_alloc:5.3f} Mreq/s ({local / global_alloc:4.2f}x win "
        f"for per-compartment allocators)",
    )
    assert local > global_alloc


def test_ablation_semaphore_placement(benchmark, report):
    """The Fig. 5 anomaly: moving sched next to the netstack does not
    help while the semaphores stay in LibC's compartment — but moving
    *LibC* in with them does."""

    def run():
        separate = _redis_mreq(
            compartments=[["netstack"], ["sched"], ["alloc", "libc", "redis"]],
            backend="mpk-shared",
        )
        merged_sched = _redis_mreq(
            compartments=[["netstack", "sched"], ["alloc", "libc", "redis"]],
            backend="mpk-shared",
        )
        merged_libc = _redis_mreq(
            compartments=[["netstack", "sched", "libc"], ["alloc", "redis"]],
            backend="mpk-shared",
        )
        return separate, merged_sched, merged_libc

    separate, merged_sched, merged_libc = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report.row(
        "Ablations",
        f"semaphore placement: NW/Sched/Rest {separate:5.3f}, "
        f"NW+Sched/Rest {merged_sched:5.3f} (no better), "
        f"NW+Sched+LibC/Rest {merged_libc:5.3f} Mreq/s",
    )
    # Merging only the scheduler barely helps...
    assert merged_sched < separate * 1.08
    # ...but bringing LibC (the semaphores) along recovers real time.
    assert merged_libc > merged_sched * 1.05


def test_ablation_api_guards(benchmark, report):
    """Cost of the §5 trust-boundary wrappers (preconditions + pointer
    validation on every cross-compartment call)."""
    groups = [["netstack"], ["sched", "alloc", "libc", "redis"]]

    def run():
        plain = _redis_mreq(compartments=groups, backend="mpk-shared")
        guarded = _redis_mreq(
            compartments=groups, backend="mpk-shared", api_guards=True
        )
        return plain, guarded

    plain, guarded = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row(
        "Ablations",
        f"API boundary guards: off {plain:5.3f} Mreq/s, on "
        f"{guarded:5.3f} Mreq/s ({plain / guarded:4.2f}x cost for "
        f"boundary checking)",
    )
    assert guarded < plain


def test_ablation_httpd_three_domains(benchmark, report):
    """A three-trust-domain web server (netstack | vfs | app) across
    backends — the crossing topology the paper's intro motivates."""
    from repro.apps import populate_files, run_closed_loop, start_httpd

    files = {"/index.html": b"x" * 512}
    requests = [b"GET /index.html\n"] * 200

    def measure(backend):
        image = build_image(
            BuildConfig(
                libraries=["libc", "netstack", "vfs", "httpd"],
                compartments=[
                    ["netstack"],
                    ["vfs"],
                    ["sched", "alloc", "libc", "httpd"],
                ],
                backend=backend,
            )
        )
        populate_files(image, files)
        start_httpd(image)
        return run_closed_loop(
            image, image.lib("httpd").PORT, requests, window=8,
            expect_prefix=b"200",
        )

    def run():
        return {
            backend: measure(backend)
            for backend in ("none", "cheri", "mpk-shared", "mpk-switched")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["none"]
    for backend, result in results.items():
        report.row(
            "Ablations",
            f"httpd 3-domain / {backend:12s}: {result.mreq_s:6.3f} Mreq/s "
            f"({base.mreq_s / result.mreq_s:4.2f}x), p50 "
            f"{result.latency_percentile(0.5):7.0f} ns, p99 "
            f"{result.latency_percentile(0.99):7.0f} ns",
        )
    assert base.mreq_s >= results["mpk-switched"].mreq_s


def _random_graph(n: int, p: float, seed: int):
    rng = random.Random(seed)
    nodes = [f"lib{i}" for i in range(n)]
    edges = {
        frozenset({a, b})
        for a, b in itertools.combinations(nodes, 2)
        if rng.random() < p
    }
    return nodes, edges


def test_ablation_coloring_quality(benchmark, report):
    """DSATUR vs exact branch-and-bound on random conflict graphs."""

    def run():
        gap = 0
        worst = 0.0
        slow = 0.0
        for seed in range(20):
            nodes, edges = _random_graph(12, 0.35, seed)
            t0 = time.perf_counter()
            greedy = dsatur_coloring(nodes, edges)
            t1 = time.perf_counter()
            exact = exact_coloring(nodes, edges)
            t2 = time.perf_counter()
            assert verify_coloring(edges, greedy)
            assert verify_coloring(edges, exact)
            g = max(greedy.values()) + 1
            e = max(exact.values()) + 1
            assert e <= g
            gap += g - e
            worst = max(worst, (t1 - t0) * 1e3)
            slow = max(slow, (t2 - t1) * 1e3)
        return gap, worst, slow

    gap, greedy_ms, exact_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row(
        "Ablations",
        f"coloring: DSATUR used {gap} extra compartments over 20 random "
        f"12-library graphs (max {greedy_ms:.2f} ms greedy vs "
        f"{exact_ms:.2f} ms exact)",
    )
