"""Gate microbenchmark: null-call round-trip cost per isolation backend.

Not a paper figure, but the primitive underneath every end-to-end
number: the cost of one cross-compartment call carrying no payload,
for each gate flavour of Figure 2's menu.
"""

from __future__ import annotations

import pytest

from repro import BuildConfig, build_image

LIBRARIES = ["libc", "mq"]
ISOLATED = [["mq"], ["sched", "alloc", "libc"]]
CALLS = 2000

BACKENDS = ["none", "cheri", "mpk-shared", "mpk-switched", "vm-rpc"]


def null_call_cost(backend: str, clear_registers: bool = True) -> float:
    """Average simulated cost of mq.q_len (a near-empty export)."""
    image = build_image(
        BuildConfig(
            libraries=LIBRARIES,
            compartments=ISOLATED,
            backend=backend,
            clear_registers=clear_registers,
        )
    )
    qid = image.call("mq", "q_new", 4)
    mq = image.lib("mq")
    libc = image.lib("libc")
    stub = libc.stub("mq")
    context = libc.compartment.make_context("bench")
    image.machine.cpu.push_context(context)
    try:
        start = image.clock_ns
        for _ in range(CALLS):
            stub.call("q_len", qid)
        return (image.clock_ns - start) / CALLS
    finally:
        image.machine.cpu.pop_context()


@pytest.mark.parametrize("backend", BACKENDS)
def test_gate_null_call(benchmark, report, backend):
    cost = benchmark.pedantic(null_call_cost, args=(backend,), rounds=1, iterations=1)
    report.row("Gate null-call round trip (ns)", f"{backend:13s} {cost:9.1f}")
    report.value("gates", backend, cost)
    benchmark.extra_info["ns_per_call"] = cost


def test_gate_cost_ordering(benchmark, report):
    costs = benchmark.pedantic(
        lambda: {backend: null_call_cost(backend) for backend in BACKENDS},
        rounds=1,
        iterations=1,
    )
    assert costs["none"] < costs["cheri"] < costs["mpk-shared"]
    assert costs["mpk-shared"] < costs["mpk-switched"]
    assert costs["mpk-switched"] < costs["vm-rpc"]
    # VM RPC is microseconds-class vs tens of ns for MPK.
    assert costs["vm-rpc"] / costs["mpk-shared"] > 20
    report.row(
        "Gate null-call round trip (ns)",
        "ordering verified: direct < cheri < mpk-shared < mpk-switched "
        "<< vm-rpc",
    )
