"""Figure 3: iperf throughput vs recv buffer size, all isolation configs.

Paper setup: an iperf server with an untrusted network stack isolated
from the rest of the OS image, under (1) two MPK compartments (shared
and switched stacks), (2) separate VMs, and (3) a single compartment
with SH applied only to the network stack — against the no-isolation
baseline.  The buffer passed to ``recv`` sweeps 2^6..2^20 bytes.

Shape targets (paper): MPK/SH are 2-3x slower for small buffers and
catch up to the baseline around 1 KiB; the VM backend needs ~32 KiB due
to its much higher domain-switching cost; all configurations converge
at line rate for large buffers.
"""

from __future__ import annotations

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.machine.cycles import CostModel

LIBRARIES = ["libc", "netstack", "iperf"]

#: "Xen's numbers are lower due to Unikraft not being optimized for
#: this hypervisor" — modelled as uniformly costlier CPU-side work on
#: the same wire.
_XEN_COST = CostModel().scaled(1.35).replace(
    wire_byte_ns=CostModel().wire_byte_ns,
    wire_pkt_ns=CostModel().wire_pkt_ns,
)
FLAT = [["netstack", "sched", "alloc", "libc", "iperf"]]
ISOLATED = [["netstack"], ["sched", "alloc", "libc", "iperf"]]
SH_SUITE = ("asan", "ubsan", "stackprotector", "cfi")

#: recv buffer sizes (2^6 .. 2^20).
BUFFER_SIZES = [2**p for p in range(6, 21, 2)]

CONFIGS = {
    "KVM Baseline": BuildConfig(
        libraries=LIBRARIES, compartments=FLAT, backend="none"
    ),
    "SH (KVM)": BuildConfig(
        libraries=LIBRARIES,
        compartments=ISOLATED,
        backend="none",
        hardening={"netstack": SH_SUITE},
    ),
    "MPK-Sha. (KVM)": BuildConfig(
        libraries=LIBRARIES, compartments=ISOLATED, backend="mpk-shared"
    ),
    "MPK-Sw. (KVM)": BuildConfig(
        libraries=LIBRARIES, compartments=ISOLATED, backend="mpk-switched"
    ),
    "Xen Baseline": BuildConfig(
        libraries=LIBRARIES, compartments=FLAT, backend="none", cost=_XEN_COST
    ),
    "VM RPC (Xen)": BuildConfig(
        libraries=LIBRARIES,
        compartments=ISOLATED,
        backend="vm-rpc",
        cost=_XEN_COST,
    ),
}


def sweep(config: BuildConfig) -> dict[int, float]:
    image = build_image(config)
    series = {}
    for size in BUFFER_SIZES:
        total = max(1 << 19, 4 * size)
        series[size] = run_iperf(image, size, total).throughput_mbps
    return series


@pytest.mark.parametrize("label", list(CONFIGS))
def test_fig3_iperf_throughput(benchmark, report, label):
    series = benchmark.pedantic(sweep, args=(CONFIGS[label],), rounds=1, iterations=1)
    cells = "  ".join(f"{size}:{mbps:8.0f}" for size, mbps in series.items())
    report.row("Fig3 iperf throughput (Mb/s)", f"{label:15s} {cells}")
    report.value("fig3", label, series)
    benchmark.extra_info["series_mbps"] = {str(k): v for k, v in series.items()}
    # Shape assertions: monotone-ish growth and saturation.
    assert series[BUFFER_SIZES[-1]] > series[BUFFER_SIZES[0]]


def test_fig3_shape_claims(benchmark, report):
    """The paper's qualitative claims about Figure 3."""
    baseline = benchmark.pedantic(
        sweep, args=(CONFIGS["KVM Baseline"],), rounds=1, iterations=1
    )
    mpk_shared = sweep(CONFIGS["MPK-Sha. (KVM)"])
    mpk_switched = sweep(CONFIGS["MPK-Sw. (KVM)"])
    sh = sweep(CONFIGS["SH (KVM)"])
    vm = sweep(CONFIGS["VM RPC (Xen)"])
    xen_baseline = sweep(CONFIGS["Xen Baseline"])

    # "With SH and MPK, for small buffers there is a non negligible
    # slowdown (2x to 3x)."  Note: the SH curve here hardens only the
    # network stack (the paper's config 3); our calibration follows
    # Table 1's netstack-only figure (~6%), so its small-buffer gap is
    # milder than the paper's Fig. 3 rendering — see EXPERIMENTS.md.
    small = BUFFER_SIZES[0]
    assert 1.4 < baseline[small] / mpk_shared[small] < 3.5
    assert 2.0 < baseline[small] / mpk_switched[small] < 4.5
    assert 1.02 < baseline[small] / sh[small] < 3.0

    # "These solutions catch up quickly ... yielding similar
    # performance starting at 1KB buffer size."
    for series in (mpk_shared, sh):
        assert baseline[4096] / series[4096] < 1.15

    # "Xen's numbers are lower due to Unikraft not being optimized for
    # this hypervisor" — below the KVM baseline at small buffers.
    assert xen_baseline[small] < baseline[small]
    # "The payload needs to be larger for the VM backend to catch up to
    # the baseline, 32KB, due to increased domain switching costs."
    assert xen_baseline[4096] / vm[4096] > 1.5
    assert xen_baseline[2**16] / vm[2**16] < 1.2
    report.row(
        "Fig3 iperf throughput (Mb/s)",
        "shape claims verified: 2-3x small-buffer MPK/SH gap, ~1KiB "
        "MPK/SH crossover, ~32KiB VM crossover",
    )
