"""Campaign driver: matrix shape, determinism, containment claims."""

import pytest

from repro.resilience import run_campaign
from repro.resilience.campaign import default_plan, main, run_cell


def test_default_plans_cover_every_site():
    for site in ("gate-crash", "wild-write", "alloc-exhaustion",
                 "sched-kill", "vm-drop", "vm-dup"):
        plan = default_plan(site, seed=3)
        assert plan.specs, site
    with pytest.raises(ValueError):
        default_plan("meteor", seed=3)


def test_same_seed_same_matrix():
    def matrix():
        result = run_campaign(
            backends=("none", "mpk-shared"),
            sites=("gate-crash", "wild-write"),
            schedules=2,
            seed=42,
        )
        return result.matrix(), [
            (cell["outcome"], cell["injected"], cell["attempts"])
            for cell in result.cells
        ]

    assert matrix() == matrix()


def test_wild_write_contained_by_isolation_not_by_none():
    result = run_campaign(
        backends=("none", "mpk-shared", "vm-rpc"),
        sites=("wild-write",),
        schedules=1,
        seed=0,
    )
    row = result.matrix()["wild-write"]
    assert row["none"] == "propagated"
    assert row["mpk-shared"] in ("contained", "recovered")
    assert row["vm-rpc"] in ("contained", "recovered")
    assert result.containment_rate("none") == 0.0
    assert result.containment_rate("mpk-shared") == 1.0


def test_vm_transient_faults_recovered_by_retry():
    result = run_campaign(
        backends=("vm-rpc", "none"),
        sites=("vm-drop",),
        schedules=1,
        seed=0,
    )
    row = result.matrix()["vm-drop"]
    assert row["vm-rpc"] == "recovered"
    # The site simply cannot fire without a VM boundary.
    assert row["none"] == "not-triggered"


def test_cell_payload_is_json_ready():
    import json

    cell = run_cell("mpk-shared", "gate-crash", default_plan("gate-crash", 1))
    json.dumps(cell)  # must not raise
    assert cell["outcome"] in (
        "recovered", "contained", "propagated", "not-triggered"
    )
    assert cell["injected"] >= 1
    assert cell["events"]


def test_recovery_latency_recorded_when_retry_needed():
    result = run_campaign(
        backends=("mpk-shared",),
        sites=("gate-crash",),
        schedules=1,
        seed=0,
    )
    latencies = result.recovery_latencies("mpk-shared")
    assert latencies and all(value > 0 for value in latencies)


def test_cli_check_contained(capsys, tmp_path):
    out = tmp_path / "campaign.json"
    code = main([
        "--backends", "mpk-shared",
        "--sites", "wild-write",
        "--schedules", "1",
        "--check-contained", "wild-write",
        "--json", str(out),
    ])
    assert code == 0
    assert out.exists()
    assert "wild-write" in capsys.readouterr().out


def test_cli_check_contained_fails_for_none_backend(capsys):
    code = main([
        "--backends", "none",
        "--sites", "wild-write",
        "--schedules", "1",
        "--check-contained", "wild-write",
    ])
    assert code == 1
    assert "did not contain" in capsys.readouterr().err
