"""Recovery campaigns: crash → reboot → recover, verdict matrix."""

import json

import pytest

from repro.resilience import (
    DEFAULT_RECOVERY_SITES,
    RecoveryCampaignResult,
    default_recovery_plan,
    run_recovery_campaign,
    run_recovery_cell,
)
from repro.resilience.campaign import main


def test_default_recovery_plans_cover_every_site():
    for site in DEFAULT_RECOVERY_SITES:
        plan = default_recovery_plan(site, seed=3)
        assert plan.specs, site
    with pytest.raises(ValueError):
        default_recovery_plan("disk-on-fire", seed=3)


@pytest.mark.parametrize("site", DEFAULT_RECOVERY_SITES)
def test_each_site_ends_in_recovered_state(site):
    """The acceptance property: every acknowledged write survives the
    crash, and no torn record ever surfaces."""
    cell = run_recovery_cell(
        "none", site, default_recovery_plan(site, seed=5), sets=12
    )
    assert cell["verdict"] == "recovered-state"
    assert cell["injected"] >= 1
    assert cell["lost_keys"] == [] and cell["torn_keys"] == []
    assert cell["restored"] >= cell["acked"]
    assert cell["generations"] >= 1  # at least one power cycle happened


def test_recovery_works_behind_real_gates():
    cell = run_recovery_cell(
        "mpk-shared",
        "blk-torn-write",
        default_recovery_plan("blk-torn-write", seed=5),
        sets=12,
    )
    assert cell["verdict"] == "recovered-state"


def test_same_seed_same_recovery_matrix():
    def run():
        result = run_recovery_campaign(
            backends=("none", "mpk-shared"),
            sites=("blk-torn-write", "crash-mid-compaction"),
            schedules=2,
            seed=11,
            sets=10,
        )
        return result.matrix(), [
            (
                cell["verdict"],
                cell["acked"],
                cell["restored"],
                cell["injected"],
                cell["generations"],
            )
            for cell in result.cells
        ]

    assert run() == run()


def test_matrix_keeps_worst_verdict():
    def cell(backend, verdict):
        return {"site": "blk-torn-write", "backend": backend,
                "verdict": verdict}

    result = RecoveryCampaignResult(
        seed=0,
        schedules=3,
        cells=[
            cell("none", "recovered-state"),
            cell("none", "lost-acked-write"),
            cell("none", "not-triggered"),
            cell("mpk-shared", "torn-surfaced"),
            cell("mpk-shared", "recovered-state"),
        ],
    )
    row = result.matrix()["blk-torn-write"]
    assert row["none"] == "lost-acked-write"
    assert row["mpk-shared"] == "torn-surfaced"


def test_recovery_cell_payload_is_json_ready():
    cell = run_recovery_cell(
        "none",
        "crash-mid-compaction",
        default_recovery_plan("crash-mid-compaction", seed=1),
        sets=8,
    )
    json.dumps(cell)  # must not raise
    for key in ("site", "backend", "seed", "verdict", "acked", "restored",
                "injected", "events", "generations",
                "torn_records_discarded"):
        assert key in cell


def test_cli_check_recovered(capsys, tmp_path):
    out = tmp_path / "recovery.json"
    code = main([
        "--recovery",
        "--backends", "none",
        "--sites", "blk-torn-write",
        "--schedules", "1",
        "--seed", "5",
        "--sets", "12",
        "--check-recovered", "blk-torn-write",
        "--json", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["matrix"]["blk-torn-write"]["none"] == "recovered-state"
    assert "blk-torn-write" in capsys.readouterr().out
