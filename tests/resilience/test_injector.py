"""FaultInjector hooks, containment policies, and VM-RPC recovery."""

import pytest

from repro.core.builder import build_image
from repro.core.config import BuildConfig
from repro.machine.faults import (
    CONTAINABLE_FAULTS,
    CompartmentFailure,
    InjectedFault,
    MachineError,
    RPCTimeout,
)
from repro.resilience import InjectionPlan, arm

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


def _image(backend="mpk-shared", policy="propagate"):
    return build_image(
        BuildConfig(
            libraries=LIBS,
            compartments=GROUPS,
            backend=backend,
            failure_policy=policy,
        )
    )


def _run(image, total=1 << 15):
    from repro.apps.workload import run_iperf

    return run_iperf(image, 1024, total)


def _call_netstack(image, fn="net_stats"):
    """One crossing into netstack from iperf's compartment."""
    stub = image.lib("iperf").stub("netstack")
    cpu = image.machine.cpu
    cpu.push_context(image.compartment_of("iperf").make_context("test"))
    try:
        return stub.call(fn)
    finally:
        cpu.pop_context()


def test_injector_attaches_and_detaches():
    image = _image()
    injector = arm(image, InjectionPlan(seed=1))
    assert image.machine.injector is injector
    injector.detach()
    assert image.machine.injector is None


def test_gate_crash_fires_on_nth_matching_crossing():
    image = _image(policy="propagate")
    plan = InjectionPlan(seed=1).crash_crossing(callee="netstack", nth=3)
    injector = arm(image, plan)
    with pytest.raises(InjectedFault, match="gate-crash"):
        _run(image)
    assert injector.fired == 1
    assert injector.events[0].site == "gate-crash"
    assert injector.events[0].outcome == "raised"
    assert image.machine.cpu.stats["resilience.injected"] == 1


def test_propagate_policy_lets_raw_fault_escape():
    image = _image(policy="propagate")
    arm(image, InjectionPlan(seed=1).crash_crossing(callee="netstack", nth=2))
    with pytest.raises(InjectedFault):
        _run(image)
    assert not image.compartment_of("netstack").failed


def test_isolate_policy_translates_and_marks_failed():
    image = _image(policy="isolate")
    arm(image, InjectionPlan(seed=1).crash_crossing(callee="netstack", nth=2))
    with pytest.raises((MachineError, RuntimeError)):
        _run(image)
    netstack_comp = image.compartment_of("netstack")
    assert netstack_comp.failed
    assert netstack_comp.last_failure is not None
    assert isinstance(netstack_comp.last_failure, CompartmentFailure)
    assert isinstance(netstack_comp.last_failure.cause, InjectedFault)
    assert image.machine.cpu.stats["resilience.contained"] >= 1
    # isolate never revives: the compartment stays failed.
    assert netstack_comp.restarts == 0


def test_isolated_compartment_fails_fast_afterwards():
    image = _image(policy="isolate")
    arm(image, InjectionPlan(seed=1).crash_crossing(callee="netstack", nth=2))
    with pytest.raises((MachineError, RuntimeError)):
        _run(image)
    with pytest.raises(CompartmentFailure, match="unavailable"):
        _call_netstack(image)


def test_restart_policy_revives_after_backoff():
    image = _image(policy="restart-with-backoff")
    arm(image, InjectionPlan(seed=1).crash_crossing(callee="netstack", nth=2))
    with pytest.raises((MachineError, RuntimeError)):
        _run(image)
    netstack_comp = image.compartment_of("netstack")
    assert netstack_comp.failed
    # Wait out the backoff, then the next crossing revives it.
    cpu = image.machine.cpu
    if netstack_comp.restart_at_ns > cpu.clock_ns:
        cpu.charge(netstack_comp.restart_at_ns - cpu.clock_ns)
    _call_netstack(image)
    assert not netstack_comp.failed
    assert netstack_comp.restarts == 1
    assert image.machine.cpu.stats["resilience.restarts"] == 1


def test_restart_backoff_is_exponential():
    image = _image(policy="restart-with-backoff")
    comp = image.compartment_of("netstack")
    failure = CompartmentFailure(comp.name)
    comp.mark_failed(1000.0, failure)
    first = comp.restart_at_ns - 1000.0
    comp.restart()
    comp.mark_failed(2000.0, failure)
    second = comp.restart_at_ns - 2000.0
    assert second == pytest.approx(2 * first)


def test_sched_kill_reaps_thread():
    image = _image(policy="restart-with-backoff")
    injector = arm(image, InjectionPlan(seed=1).kill_thread(thread="iperf", nth=1))
    with pytest.raises((MachineError, RuntimeError)):
        _run(image)
    assert injector.fired == 1
    assert injector.events[0].outcome == "killed"
    assert not any(
        "iperf" in thread.name for thread in image.scheduler.threads.values()
    )


def test_alloc_exhaustion_heap_filter():
    image = _image(policy="propagate")
    plan = InjectionPlan(seed=1).exhaust_alloc(heap="heap:shared", nth=1)
    injector = arm(image, plan)
    with pytest.raises(InjectedFault, match="alloc-exhaustion"):
        _run(image)
    assert "heap:shared" in injector.events[0].detail


def test_wild_write_trapped_by_mpk_lands_on_none():
    def attack(backend):
        image = _image(backend=backend, policy="propagate")
        plan = InjectionPlan(seed=1).wild_write(
            victim="sched", callee="netstack", nth=2
        )
        injector = arm(image, plan)
        try:
            _run(image)
        except (MachineError, RuntimeError):
            pass
        return injector

    mpk = attack("mpk-shared")
    assert mpk.events[0].outcome == "trapped"
    assert mpk.probes_intact()
    flat = attack("none")
    assert flat.events[0].outcome == "landed"
    assert not flat.probes_intact()


def test_vm_drop_recovered_by_retry():
    image = _image(backend="vm-rpc", policy="propagate")
    arm(image, InjectionPlan(seed=1).drop_vm_notify(nth=3))
    result = _run(image)
    assert result.throughput_mbps > 0
    stats = image.machine.cpu.stats
    assert stats["vm_rpc_retries"] >= 1
    assert stats.get("vm_rpc_timeouts", 0) == 0


def test_vm_drop_burst_exhausts_retries():
    image = _image(backend="vm-rpc", policy="propagate")
    arm(image, InjectionPlan(seed=1).drop_vm_notify(nth=3, count=50))
    with pytest.raises(RPCTimeout):
        _run(image)
    assert image.machine.cpu.stats["vm_rpc_timeouts"] >= 1


def test_vm_duplicate_discarded():
    image = _image(backend="vm-rpc", policy="propagate")
    injector = arm(image, InjectionPlan(seed=1).duplicate_vm_notify(nth=3))
    result = _run(image)
    assert result.throughput_mbps > 0
    assert injector.events[0].outcome == "duplicated"
    assert image.machine.cpu.stats["vm_rpc_duplicates"] == 1


def test_retry_costs_simulated_time():
    """One dropped notification makes exactly that crossing dearer by
    the resend (one extra notify) plus the backoff wait."""
    from repro.resilience.injector import FaultInjector

    def crossing_cost(dropped):
        image = _image(backend="vm-rpc", policy="propagate")
        if dropped:
            injector = FaultInjector(InjectionPlan(seed=1).drop_vm_notify(nth=1))
            injector.machine = image.machine
            image.machine.injector = injector
        cpu = image.machine.cpu
        start = cpu.clock_ns
        _call_netstack(image)
        return cpu.clock_ns - start

    from repro.machine.cycles import CostModel

    plain = crossing_cost(False)
    retried = crossing_cost(True)
    cost = CostModel()
    extra_notify = cost.vm_notify_ns + 8 * cost.vm_copy_byte_ns
    assert retried == pytest.approx(plain + extra_notify + cost.vm_rpc_timeout_ns)


def test_injection_is_deterministic():
    def trail():
        image = _image(policy="restart-with-backoff")
        injector = arm(
            image, InjectionPlan(seed=9).crash_crossing(callee="netstack", nth=4)
        )
        try:
            _run(image)
        except (MachineError, RuntimeError):
            pass
        return [
            (event.site, event.at_ns, event.detail, event.outcome)
            for event in injector.events
        ], image.clock_ns

    assert trail() == trail()


def test_containable_taxonomy_excludes_translated_faults():
    from repro.machine.faults import BoundaryViolation, GateError

    assert InjectedFault in CONTAINABLE_FAULTS
    assert CompartmentFailure not in CONTAINABLE_FAULTS
    assert RPCTimeout not in CONTAINABLE_FAULTS
    assert GateError not in CONTAINABLE_FAULTS
    assert BoundaryViolation not in CONTAINABLE_FAULTS


def test_core_errors_reexports_fault_taxonomy():
    from repro.core import errors

    for name in (
        "CompartmentFailure",
        "InjectedFault",
        "RPCTimeout",
        "ProtectionFault",
        "GateError",
        "CONTAINABLE_FAULTS",
    ):
        assert hasattr(errors, name)
        assert name in errors.__all__
