"""InjectionPlan DSL: validation, serialisation, seeded schedules."""

import pytest

from repro.resilience.plan import SITES, FaultSpec, InjectionPlan


def test_known_sites():
    assert set(SITES) == {
        "gate-crash",
        "wild-write",
        "alloc-exhaustion",
        "sched-kill",
        "vm-drop",
        "vm-dup",
        "blk-torn-write",
        "crash-mid-compaction",
        "crash-mid-recovery",
        "repl-drop",
        "repl-crash-primary",
    }


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown injection site"):
        FaultSpec("cosmic-ray")


def test_nth_and_count_validated():
    with pytest.raises(ValueError, match="nth and count"):
        FaultSpec("gate-crash", nth=0)
    with pytest.raises(ValueError, match="nth and count"):
        FaultSpec("gate-crash", count=0)


def test_wild_write_requires_victim():
    with pytest.raises(ValueError, match="victim"):
        FaultSpec("wild-write")
    FaultSpec("wild-write", victim="sched")  # fine


def test_sched_kill_requires_thread_filter():
    with pytest.raises(ValueError, match="thread"):
        FaultSpec("sched-kill")


def test_edge_matching():
    spec = FaultSpec("gate-crash", callee="netstack")
    assert spec.matches_edge("iperf", "netstack", "mpk-shared")
    assert not spec.matches_edge("iperf", "sched", "mpk-shared")
    narrow = FaultSpec("gate-crash", caller="iperf", kind="vm-rpc")
    assert narrow.matches_edge("iperf", "netstack", "vm-rpc")
    assert not narrow.matches_edge("netstack", "iperf", "vm-rpc")
    assert not narrow.matches_edge("iperf", "netstack", "direct")


def test_fluent_builders_accumulate():
    plan = (
        InjectionPlan(seed=3)
        .crash_crossing(callee="netstack", nth=2)
        .wild_write(victim="sched")
        .exhaust_alloc(heap="shared")
        .kill_thread(thread="iperf")
        .drop_vm_notify()
        .duplicate_vm_notify()
    )
    assert [spec.site for spec in plan.specs] == [
        "gate-crash",
        "wild-write",
        "alloc-exhaustion",
        "sched-kill",
        "vm-drop",
        "vm-dup",
    ]


def test_dict_roundtrip():
    plan = InjectionPlan(seed=11).crash_crossing(callee="netstack", nth=2)
    rebuilt = InjectionPlan.from_dict(plan.to_dict())
    assert rebuilt.seed == 11
    assert rebuilt.specs == plan.specs
    assert rebuilt.to_dict() == plan.to_dict()


def test_schedules_are_deterministic():
    def variants(seed):
        plan = InjectionPlan(seed=seed).crash_crossing(callee="netstack", nth=3)
        return [
            (schedule.seed, tuple(spec.nth for spec in schedule.specs))
            for schedule in plan.schedules(4)
        ]

    assert variants(5) == variants(5)
    assert variants(5) != variants(6)


def test_schedules_jitter_never_fires_early():
    plan = InjectionPlan(seed=1).crash_crossing(callee="netstack", nth=3)
    for schedule in plan.schedules(8):
        assert schedule.specs[0].nth >= 3
