"""Unit tests for the blk micro-library: cache, flush barriers, crash."""

import random

import pytest

from repro import BuildConfig, build_image
from repro.libos.blk.blkdev import SECTOR_SIZE, DiskMedium
from repro.machine.faults import GateError


@pytest.fixture
def medium():
    return DiskMedium(num_sectors=64)


@pytest.fixture
def image(medium):
    img = build_image(
        BuildConfig(
            libraries=["libc", "blk"],
            compartments=[["sched", "alloc", "libc", "blk"]],
            backend="none",
        )
    )
    img.lib("blk").attach_medium(medium)
    return img


@pytest.fixture
def buf(image):
    return image.call("alloc", "malloc_shared", SECTOR_SIZE)


def put(image, addr, data):
    space = image.compartments[0].address_space
    image.machine.dma_write(space, addr, data)


def get(image, addr, n):
    space = image.compartments[0].address_space
    return image.machine.dma_read(space, addr, n)


def sector_payload(tag: bytes) -> bytes:
    return (tag * (SECTOR_SIZE // len(tag) + 1))[:SECTOR_SIZE]


def test_write_is_not_durable_until_flush(image, medium, buf):
    payload = sector_payload(b"A")
    put(image, buf, payload)
    image.call("blk", "blk_write", 3, buf)
    # The medium has not seen the write ...
    assert medium.read(3) == b"\x00" * SECTOR_SIZE
    # ... but reads are served from the cache.
    put(image, buf, b"\x00" * SECTOR_SIZE)
    image.call("blk", "blk_read", 3, buf)
    assert get(image, buf, SECTOR_SIZE) == payload
    flushed = image.call("blk", "blk_flush")
    assert flushed == 1
    assert medium.read(3) == payload


def test_flush_is_idempotent_and_ordered(image, medium, buf):
    for sector, tag in ((5, b"x"), (1, b"y"), (9, b"z")):
        put(image, buf, sector_payload(tag))
        image.call("blk", "blk_write", sector, buf)
    assert image.call("blk", "blk_flush") == 3
    assert image.call("blk", "blk_flush") == 0  # nothing dirty
    assert medium.read(1) == sector_payload(b"y")


def test_rewrite_moves_sector_to_flush_tail(image, medium, buf):
    put(image, buf, sector_payload(b"1"))
    image.call("blk", "blk_write", 2, buf)
    put(image, buf, sector_payload(b"2"))
    image.call("blk", "blk_write", 2, buf)  # rewrite, still one flush
    assert image.call("blk", "blk_flush") == 1
    assert medium.read(2) == sector_payload(b"2")


def test_out_of_range_sector_rejected(image, buf):
    with pytest.raises(GateError, match="out of range"):
        image.call("blk", "blk_write", 64, buf)
    with pytest.raises(GateError, match="out of range"):
        image.call("blk", "blk_read", -1, buf)


def test_blk_info_and_stats(image, medium, buf):
    info = image.call("blk", "blk_info")
    assert info["num_sectors"] == 64
    assert info["sector_size"] == SECTOR_SIZE
    put(image, buf, sector_payload(b"s"))
    image.call("blk", "blk_write", 0, buf)
    stats = image.call("blk", "blk_stats")
    assert stats["writes"] == 1 and stats["dirty"] == 1
    image.call("blk", "blk_flush")
    stats = image.call("blk", "blk_stats")
    assert stats["dirty"] == 0 and stats["medium_writes"] == 1


def test_ops_charge_simulated_time(image, buf):
    before = image.clock_ns
    put(image, buf, sector_payload(b"t"))
    image.call("blk", "blk_write", 0, buf)
    image.call("blk", "blk_flush")
    assert image.clock_ns > before


def test_standalone_boot_gets_fresh_medium():
    img = build_image(
        BuildConfig(
            libraries=["libc", "blk"],
            compartments=[["sched", "alloc", "libc", "blk"]],
            backend="none",
        )
    )
    assert img.lib("blk").medium is not None


def test_crash_destroys_only_unflushed_state(image, medium, buf):
    put(image, buf, sector_payload(b"D"))
    image.call("blk", "blk_write", 0, buf)
    image.call("blk", "blk_flush")
    for sector in range(1, 9):
        put(image, buf, sector_payload(b"%d" % sector))
        image.call("blk", "blk_write", sector, buf)
    report = image.lib("blk").crash(random.Random(42))
    # Flushed data is untouched — that is the contract.
    assert medium.read(0) == sector_payload(b"D")
    assert report.dirty == 8
    assert report.persisted + report.dropped == 8
    assert medium.generation == 1
    # The cache died with the power.
    stats = image.call("blk", "blk_stats")
    assert stats["dirty"] == 0 and stats["cached"] == 0
    # Every persisted-untorn sector holds exactly the intended bytes;
    # torn sectors hold a strict prefix + garbage.
    torn = set(report.torn_sectors)
    for sector in range(1, 9):
        on_disk = medium.read(sector)
        intended = sector_payload(b"%d" % sector)
        if on_disk == b"\x00" * SECTOR_SIZE:
            continue  # dropped
        if sector in torn:
            assert on_disk != intended
        else:
            assert on_disk == intended


def test_crash_is_seed_deterministic(image, medium, buf):
    for sector in range(4):
        put(image, buf, sector_payload(b"%d" % sector))
        image.call("blk", "blk_write", sector, buf)
    snapshot = dict(medium.sectors)
    report_a = image.lib("blk").crash(random.Random(7))
    state_a = dict(medium.sectors)

    # Rebuild the identical dirty state on a fresh medium + image.
    medium.sectors = dict(snapshot)
    medium.generation = 0
    img2 = build_image(
        BuildConfig(
            libraries=["libc", "blk"],
            compartments=[["sched", "alloc", "libc", "blk"]],
            backend="none",
        )
    )
    img2.lib("blk").attach_medium(medium)
    buf2 = img2.call("alloc", "malloc_shared", SECTOR_SIZE)
    for sector in range(4):
        put(img2, buf2, sector_payload(b"%d" % sector))
        img2.call("blk", "blk_write", sector, buf2)
    report_b = img2.lib("blk").crash(random.Random(7))
    assert report_a.to_dict() == report_b.to_dict()
    assert state_a == dict(medium.sectors)


def test_tear_on_medium_keeps_prefix(image, medium, buf):
    payload = sector_payload(b"P")
    put(image, buf, payload)
    image.call("blk", "blk_write", 6, buf)
    keep = image.lib("blk").tear_on_medium(6, random.Random(3))
    on_disk = medium.read(6)
    assert on_disk[:keep] == payload[:keep]
    assert on_disk != payload
