"""Unit tests for the message-queue micro-library."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["sched", "alloc", "libc", "mq"]],
            backend="none",
        )
    )


def test_q_new_validates_capacity(image):
    with pytest.raises(ValueError):
        image.call("mq", "q_new", 0)
    qid = image.call("mq", "q_new", 4)
    assert image.call("mq", "q_len", qid) == 0


def test_unknown_queue(image):
    with pytest.raises(GateError):
        image.call("mq", "q_len", 42)


def test_push_pop_fifo(image):
    qid = image.call("mq", "q_new", 8)
    mq = image.lib("mq")
    popped = []

    def producer():
        for index in range(4):
            yield from mq.q_push(qid, 0x1000 + index, index)

    def consumer():
        for _ in range(4):
            item = yield from mq.q_pop(qid)
            popped.append(item)

    image.spawn("producer", producer, mq)
    image.spawn("consumer", consumer, mq)
    image.run()
    assert popped == [(0x1000 + i, i) for i in range(4)]


def test_pop_blocks_until_push(image):
    qid = image.call("mq", "q_new", 2)
    mq = image.lib("mq")
    log = []

    def consumer():
        item = yield from mq.q_pop(qid)
        log.append(("got", item))

    def producer():
        yield YIELD
        log.append(("push",))
        yield from mq.q_push(qid, 0xAA, 1)

    image.spawn("consumer", consumer, mq)
    image.spawn("producer", producer, mq)
    image.run()
    assert log == [("push",), ("got", (0xAA, 1))]


def test_push_blocks_when_full(image):
    qid = image.call("mq", "q_new", 1)
    mq = image.lib("mq")
    log = []

    def producer():
        yield from mq.q_push(qid, 1, 1)
        log.append("pushed-1")
        yield from mq.q_push(qid, 2, 2)  # blocks: capacity 1
        log.append("pushed-2")

    def consumer():
        yield YIELD
        item = yield from mq.q_pop(qid)
        log.append(f"popped-{item[0]}")

    image.spawn("producer", producer, mq)
    image.spawn("consumer", consumer, mq)
    image.run()
    assert log == ["pushed-1", "popped-1", "pushed-2"]
    assert image.call("mq", "q_len", qid) == 1


def test_mq_across_mpk_compartments():
    """Descriptors flow across an MPK boundary; payload in shared heap."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
        )
    )
    qid = image.call("mq", "q_new", 4)
    libc = image.lib("libc")
    payload_addr = image.call("alloc", "malloc_shared", 64)
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("libc").make_context())
    machine.store(payload_addr, b"cross-domain message")
    machine.cpu.pop_context()
    received = []

    def producer():
        stub = libc.stub("mq")
        yield from stub.call_gen("q_push", qid, payload_addr, 20)

    def consumer():
        stub = libc.stub("mq")
        addr, length = yield from stub.call_gen("q_pop", qid)
        data = image.machine.load(addr, length)
        received.append(data)

    image.spawn("producer", producer, libc)
    image.spawn("consumer", consumer, libc)
    image.run()
    assert received == [b"cross-domain message"]
