"""Unit and property tests for the packet wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.libos.net.packet import (
    FLAG_FIN,
    FLAG_PSH,
    FLAG_SYN,
    HEADER_SIZE,
    MSS,
    MTU,
    Header,
    build_packet,
    pack_header,
    segment_payload,
    unpack_header,
)


def test_header_constants():
    assert HEADER_SIZE == 16
    assert MSS == MTU - HEADER_SIZE


def test_pack_unpack_roundtrip():
    header = Header(1234, 80, 0xDEADBEEF, 42, 999, FLAG_PSH | FLAG_SYN)
    parsed = unpack_header(pack_header(header))
    assert parsed == header
    assert parsed.is_syn
    assert not parsed.is_fin


def test_fin_flag():
    header = Header(1, 2, 0, 0, 0, FLAG_FIN)
    assert unpack_header(pack_header(header)).is_fin


def test_short_header_rejected():
    with pytest.raises(ValueError):
        unpack_header(b"short")


def test_seq_wraps_at_32_bits():
    header = Header(1, 2, 2**32 + 5, 2**33 + 7, 0)
    parsed = unpack_header(pack_header(header))
    assert parsed.seq == 5
    assert parsed.ack == 7


def test_build_packet():
    packet = build_packet(8080, b"payload", src_port=1000, seq=3)
    header = unpack_header(packet)
    assert header.dst_port == 8080
    assert header.src_port == 1000
    assert header.seq == 3
    assert header.length == 7
    assert packet[HEADER_SIZE:] == b"payload"


def test_build_packet_oversized_rejected():
    with pytest.raises(ValueError):
        build_packet(80, b"x" * (MSS + 1))


def test_segment_payload_covers_stream():
    stream = bytes(range(256)) * 20  # 5120 bytes
    packets = segment_payload(80, stream)
    assert len(packets) == -(-len(stream) // MSS)
    reassembled = b"".join(p[HEADER_SIZE:] for p in packets)
    assert reassembled == stream
    # Sequence numbers advance by payload length.
    seqs = [unpack_header(p).seq for p in packets]
    lengths = [unpack_header(p).length for p in packets]
    for i in range(1, len(packets)):
        assert seqs[i] == seqs[i - 1] + lengths[i - 1]


@given(payload=st.binary(max_size=MSS), port=st.integers(1, 65535))
def test_build_packet_roundtrip_property(payload, port):
    packet = build_packet(port, payload)
    header = unpack_header(packet)
    assert header.dst_port == port
    assert header.length == len(payload)
    assert packet[HEADER_SIZE : HEADER_SIZE + header.length] == payload


@given(stream=st.binary(min_size=1, max_size=4 * MSS + 17))
def test_segmentation_property(stream):
    packets = segment_payload(99, stream)
    assert all(len(p) <= MTU for p in packets)
    assert b"".join(p[HEADER_SIZE:] for p in packets) == stream
