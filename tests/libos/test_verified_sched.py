"""Unit tests for the verified scheduler's runtime contracts."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD, Thread, ThreadState, WaitQueue
from repro.libos.sched.contracts import ContractKit
from repro.machine.faults import ContractViolation
from repro.machine.machine import Machine


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
            scheduler="verified",
        )
    )


def test_contract_kit_charges_and_raises():
    machine = Machine()
    kit = ContractKit(machine, "component")
    kit.check(True, "fine")
    assert machine.cpu.clock_ns == machine.cost.contract_check_ns
    assert kit.checks_evaluated == 1
    with pytest.raises(ContractViolation) as info:
        kit.check(False, "broken invariant")
    assert "broken invariant" in str(info.value)
    assert kit.violations == 1


def test_contract_kit_check_all_and_holds():
    machine = Machine()
    kit = ContractKit(machine, "c")
    kit.check_all([(True, "a"), (True, "b")])
    kit.holds(lambda: True, "lazy")
    assert kit.checks_evaluated == 3
    with pytest.raises(ContractViolation):
        kit.check_all([(True, "a"), (False, "b")])


def test_verified_switch_costs_218_6(image):
    def body():
        for _ in range(100):
            yield YIELD

    image.spawn("t", body, image.lib("libc"))
    start = image.clock_ns
    switches = image.run()
    # Slight overshoot: the thread-exit wake check amortises over the
    # run (the dedicated microbenchmark pins the exact figure).
    assert (image.clock_ns - start) / switches == pytest.approx(
        218.6, rel=0.005
    )


def test_thread_add_precondition_double_add(image):
    """The paper's worked example: 'not add a thread that has already
    been added'."""

    def body():
        yield YIELD

    thread = image.spawn("once", body, image.lib("libc"))
    with pytest.raises(ContractViolation, match="not already added"):
        image.scheduler.thread_add(thread)


def test_thread_add_precondition_bad_state(image):
    thread = Thread(999, "zombie", iter(()), image.lib("libc").compartment.make_context())
    thread.state = ThreadState.DONE
    with pytest.raises(ContractViolation, match="addable state"):
        image.scheduler.thread_add(thread)


def test_wake_one_precondition(image):
    with pytest.raises(ContractViolation, match="valid wait queue"):
        image.scheduler.wake_one("not a waitqueue")


def test_block_notify_precondition(image):
    with pytest.raises(ContractViolation, match="valid wait queue"):
        image.scheduler.block_notify(42)


def test_wake_one_postconditions_hold(image):
    waitq = WaitQueue("q")

    def body():
        from repro.libos.sched.base import Block

        yield Block(waitq)

    image.spawn("sleeper", body, image.lib("libc"))
    image.run()
    assert image.scheduler.wake_one(waitq)
    assert not image.scheduler.wake_one(waitq)


def test_functionally_identical_to_coop():
    """Verified and C schedulers produce identical execution orders."""
    logs = {}
    for kind in ("coop", "verified"):
        image = build_image(
            BuildConfig(
                libraries=["libc"],
                compartments=[["sched", "alloc", "libc"]],
                backend="none",
                scheduler=kind,
            )
        )
        log = []

        def make(tag, log=log):
            def body():
                for step in range(3):
                    log.append((tag, step))
                    yield YIELD

            return body

        image.spawn("a", make("a"), image.lib("libc"))
        image.spawn("b", make("b"), image.lib("libc"))
        image.run()
        logs[kind] = log
    assert logs["coop"] == logs["verified"]


def test_contracts_counted(image):
    def body():
        yield YIELD

    image.spawn("t", body, image.lib("libc"))
    image.run()
    # 3 checks at thread_add + 8 per switch × 2 switches + 1 for the
    # exit-waitqueue wake when the thread completes.
    assert image.scheduler.contracts.checks_evaluated == 3 + 16 + 1
    assert image.stats()["contract_checks"] == 20
