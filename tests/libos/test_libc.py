"""Unit tests for the LibC micro-library."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )


@pytest.fixture
def scratch(image):
    """A writable scratch buffer + helper to run in libc's context."""
    addr = image.call("alloc", "malloc", 4096)
    return image, addr


def test_memcpy(scratch):
    image, addr = scratch
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("libc").make_context())
    try:
        machine.store(addr, b"source bytes")
        image.lib("libc").memcpy(addr + 100, addr, 12)
        assert machine.load(addr + 100, 12) == b"source bytes"
    finally:
        machine.cpu.pop_context()


def test_memcpy_zero_and_negative(scratch):
    image, addr = scratch
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("libc").make_context())
    try:
        assert image.lib("libc").memcpy(addr, addr + 8, 0) == addr
        with pytest.raises(ValueError):
            image.lib("libc").memcpy(addr, addr + 8, -1)
    finally:
        machine.cpu.pop_context()


def test_memset_and_memcmp(scratch):
    image, addr = scratch
    libc = image.lib("libc")
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("libc").make_context())
    try:
        libc.memset(addr, 0xAA, 16)
        libc.memset(addr + 16, 0xAA, 16)
        assert libc.memcmp(addr, addr + 16, 16) == 0
        libc.memset(addr + 16, 0xBB, 1)
        assert libc.memcmp(addr, addr + 16, 16) < 0
        assert libc.memcmp(addr + 16, addr, 16) > 0
        with pytest.raises(ValueError):
            libc.memset(addr, 0, -2)
    finally:
        machine.cpu.pop_context()


def test_strlen(scratch):
    image, addr = scratch
    libc = image.lib("libc")
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("libc").make_context())
    try:
        machine.store(addr, b"hello, flexos\x00")
        assert libc.strlen(addr) == 13
        machine.store(addr, b"\x00")
        assert libc.strlen(addr) == 0
    finally:
        machine.cpu.pop_context()


def test_sem_counting_semantics(image):
    sem = image.call("libc", "sem_new", 2)
    assert image.call("libc", "sem_value", sem) == 2
    image.call("libc", "sem_v", sem)
    assert image.call("libc", "sem_value", sem) == 3


def test_sem_binary_clamps(image):
    sem = image.call("libc", "sem_new", 0, True)
    image.call("libc", "sem_v", sem)
    image.call("libc", "sem_v", sem)
    image.call("libc", "sem_v", sem)
    assert image.call("libc", "sem_value", sem) == 1


def test_sem_negative_initial_rejected(image):
    with pytest.raises(ValueError):
        image.call("libc", "sem_new", -1)


def test_unknown_sem_rejected(image):
    with pytest.raises(GateError):
        image.call("libc", "sem_v", 999)


def test_sem_p_blocks_and_v_wakes(image):
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 0)
    log = []

    def waiter():
        log.append("before")
        yield from libc.sem_p(sem)
        log.append("after")

    def signaller():
        yield YIELD
        log.append("signal")
        libc.sem_v(sem)
        yield YIELD

    image.spawn("waiter", waiter, libc)
    image.spawn("signaller", signaller, libc)
    image.run()
    assert log == ["before", "signal", "after"]


def test_sem_p_nonblocking_when_tokens_available(image):
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 1)
    done = []

    def body():
        yield from libc.sem_p(sem)
        done.append(1)

    image.spawn("t", body, libc)
    image.run()
    assert done == [1]
    assert image.call("libc", "sem_value", sem) == 0


def test_sem_waiters_diagnostic(image):
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 0)

    def body():
        yield from libc.sem_p(sem)

    image.spawn("w", body, libc)
    image.run()
    assert image.call("libc", "sem_waiters", sem) == 1
    image.call("libc", "sem_v", sem)
    image.run()
    assert image.call("libc", "sem_waiters", sem) == 0


def test_producer_consumer_ordering(image):
    """Tokens are handed out FIFO across multiple waiters."""
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 0)
    order = []

    def make(tag):
        def body():
            yield from libc.sem_p(sem)
            order.append(tag)

        return body

    for tag in ("first", "second", "third"):
        image.spawn(tag, make(tag), libc)
    image.run()
    for _ in range(3):
        image.call("libc", "sem_v", sem)
        image.run()
    assert order == ["first", "second", "third"]
