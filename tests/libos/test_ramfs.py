"""Unit tests for the ramfs/vfs micro-library."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.fs.ramfs import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "vfs"],
            compartments=[["sched", "alloc", "libc", "vfs"]],
            backend="none",
        )
    )


@pytest.fixture
def shared_buf(image):
    return image.call("alloc", "malloc_shared", 8192)


def put(image, addr, data):
    space = image.compartments[0].address_space
    image.machine.dma_write(space, addr, data)


def get(image, addr, n):
    space = image.compartments[0].address_space
    return image.machine.dma_read(space, addr, n)


def test_create_write_read_roundtrip(image, shared_buf):
    fd = image.call("vfs", "open", "/data", O_WRONLY | O_CREAT)
    put(image, shared_buf, b"hello filesystem")
    assert image.call("vfs", "write", fd, shared_buf, 16) == 16
    image.call("vfs", "close", fd)

    fd = image.call("vfs", "open", "/data", O_RDONLY)
    put(image, shared_buf, b"\x00" * 16)
    assert image.call("vfs", "read", fd, shared_buf, 64) == 16
    assert get(image, shared_buf, 16) == b"hello filesystem"
    image.call("vfs", "close", fd)


def test_open_missing_without_creat(image):
    with pytest.raises(GateError, match="no such file"):
        image.call("vfs", "open", "/ghost", O_RDONLY)


def test_write_readonly_fd_rejected(image, shared_buf):
    image.call("vfs", "open", "/f", O_WRONLY | O_CREAT)
    fd = image.call("vfs", "open", "/f", O_RDONLY)
    with pytest.raises(GateError, match="not open for writing"):
        image.call("vfs", "write", fd, shared_buf, 4)


def test_read_writeonly_fd_rejected(image, shared_buf):
    fd = image.call("vfs", "open", "/f", O_WRONLY | O_CREAT)
    with pytest.raises(GateError, match="not open for reading"):
        image.call("vfs", "read", fd, shared_buf, 4)


def test_trunc_resets_content(image, shared_buf):
    fd = image.call("vfs", "open", "/t", O_WRONLY | O_CREAT)
    put(image, shared_buf, b"old content")
    image.call("vfs", "write", fd, shared_buf, 11)
    image.call("vfs", "close", fd)
    fd = image.call("vfs", "open", "/t", O_WRONLY | O_TRUNC)
    image.call("vfs", "close", fd)
    assert image.call("vfs", "stat", "/t")["size"] == 0


def test_append_mode(image, shared_buf):
    fd = image.call("vfs", "open", "/log", O_WRONLY | O_CREAT)
    put(image, shared_buf, b"first ")
    image.call("vfs", "write", fd, shared_buf, 6)
    image.call("vfs", "close", fd)
    fd = image.call("vfs", "open", "/log", O_WRONLY | O_APPEND)
    put(image, shared_buf, b"second")
    image.call("vfs", "write", fd, shared_buf, 6)
    image.call("vfs", "close", fd)
    fd = image.call("vfs", "open", "/log", O_RDONLY)
    image.call("vfs", "read", fd, shared_buf, 12)
    assert get(image, shared_buf, 12) == b"first second"


def test_lseek_all_whences(image, shared_buf):
    fd = image.call("vfs", "open", "/s", O_RDWR | O_CREAT)
    put(image, shared_buf, b"0123456789")
    image.call("vfs", "write", fd, shared_buf, 10)
    assert image.call("vfs", "lseek", fd, 2, SEEK_SET) == 2
    assert image.call("vfs", "lseek", fd, 3, SEEK_CUR) == 5
    assert image.call("vfs", "lseek", fd, -1, SEEK_END) == 9
    image.call("vfs", "read", fd, shared_buf, 4)
    assert get(image, shared_buf, 1) == b"9"
    with pytest.raises(ValueError):
        image.call("vfs", "lseek", fd, -100, SEEK_SET)
    with pytest.raises(ValueError):
        image.call("vfs", "lseek", fd, 0, 9)


def test_large_file_spans_blocks(image, shared_buf):
    data = bytes(range(256)) * 24  # 6144 bytes > one block
    fd = image.call("vfs", "open", "/big", O_RDWR | O_CREAT)
    put(image, shared_buf, data)
    image.call("vfs", "write", fd, shared_buf, len(data))
    assert image.call("vfs", "fstat", fd)["blocks"] == 2
    image.call("vfs", "lseek", fd, 0, SEEK_SET)
    put(image, shared_buf, b"\x00" * len(data))
    assert image.call("vfs", "read", fd, shared_buf, len(data)) == len(data)
    assert get(image, shared_buf, len(data)) == data


def test_sparse_overwrite_mid_file(image, shared_buf):
    fd = image.call("vfs", "open", "/m", O_RDWR | O_CREAT)
    put(image, shared_buf, b"AAAAAAAAAA")
    image.call("vfs", "write", fd, shared_buf, 10)
    image.call("vfs", "lseek", fd, 4, SEEK_SET)
    put(image, shared_buf, b"BB")
    image.call("vfs", "write", fd, shared_buf, 2)
    image.call("vfs", "lseek", fd, 0, SEEK_SET)
    image.call("vfs", "read", fd, shared_buf, 10)
    assert get(image, shared_buf, 10) == b"AAAABBAAAA"
    assert image.call("vfs", "fstat", fd)["size"] == 10


def test_unlink_frees_blocks(image, shared_buf):
    before = image.compartments[0].allocator.bytes_in_use
    fd = image.call("vfs", "open", "/tmp", O_WRONLY | O_CREAT)
    put(image, shared_buf, b"x" * 100)
    image.call("vfs", "write", fd, shared_buf, 100)
    image.call("vfs", "close", fd)
    image.call("vfs", "unlink", "/tmp")
    assert image.compartments[0].allocator.bytes_in_use == before
    with pytest.raises(GateError):
        image.call("vfs", "unlink", "/tmp")
    with pytest.raises(GateError):
        image.call("vfs", "stat", "/tmp")


def test_listdir_and_stats(image, shared_buf):
    image.call("vfs", "open", "/b", O_CREAT)
    image.call("vfs", "open", "/a", O_CREAT)
    assert image.call("vfs", "listdir") == ["/a", "/b"]
    stats = image.call("vfs", "fs_stats")
    assert stats["files"] == 2
    assert stats["open_fds"] == 2


def test_bad_fd(image, shared_buf):
    with pytest.raises(GateError):
        image.call("vfs", "read", 99, shared_buf, 4)
    with pytest.raises(GateError):
        image.call("vfs", "close", 99)


def test_vfs_across_mpk_boundary():
    """File I/O from another compartment via gates + shared staging."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "vfs", "mq"],
            compartments=[["vfs"], ["sched", "alloc", "libc", "mq"]],
            backend="mpk-shared",
        )
    )
    mq = image.lib("mq")
    buf = image.call("alloc", "malloc_shared", 256)
    machine = image.machine
    machine.cpu.push_context(image.compartment_of("mq").make_context())
    try:
        machine.store(buf, b"written across a pkey boundary")
        stub = mq.stub("vfs")
        fd = stub.call("open", "/x", O_WRONLY | O_CREAT)
        stub.call("write", fd, buf, 30)
        stub.call("close", fd)
        fd = stub.call("open", "/x", O_RDONLY)
        machine.store(buf, b"\x00" * 30)
        assert stub.call("read", fd, buf, 64) == 30
        assert machine.load(buf, 30) == b"written across a pkey boundary"
    finally:
        machine.cpu.pop_context()
