"""Hierarchical timer wheel: placement, cascades, dead-timer pruning.

The wheel replaces the scheduler's sorted-heap timer queue; these tests
pin the behaviors the scheduler depends on — exact heap-compatible fire
order (by ``(deadline_ns, seq)``), correct firing for deadlines far
beyond the innermost wheel's span (cascading down levels), and the
dead-timer semantics: an armed timer whose wait queue has emptied never
fires, never counts as pending, and never attracts the tickless-idle
clock.
"""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD
from repro.libos.sched.timerwheel import RESOLUTION_NS, SLOTS, TimerWheel


class Waiters:
    """Stand-in wait queue: the wheel only ever asks for its length."""

    def __init__(self, n=1):
        self.n = n

    def __len__(self):
        return self.n


def test_fires_in_deadline_then_seq_order():
    wheel = TimerWheel()
    waitq = Waiters()
    # Same-tick collisions: all three land in one 64 ns slot.
    wheel.schedule(100.0, 3, waitq)
    wheel.schedule(70.0, 1, waitq)
    wheel.schedule(70.0, 2, waitq)
    wheel.schedule(5_000.0, 4, waitq)
    due = wheel.collect(120.0)
    assert [(e.deadline_ns, e.seq) for e in due] == [
        (70.0, 1),
        (70.0, 2),
        (100.0, 3),
    ]
    assert len(wheel) == 1  # the 5 µs timer is still armed
    assert wheel.collect(5_000.0)[0].seq == 4
    assert len(wheel) == 0


def test_not_due_until_exact_deadline():
    wheel = TimerWheel()
    wheel.schedule(1_000.0, 1, Waiters())
    assert wheel.collect(999.9) == []
    assert len(wheel) == 1
    assert [e.seq for e in wheel.collect(1_000.0)] == [1]


def test_fractional_tick_deadline_waits_for_the_clock():
    # A deadline mid-tick must not fire when the wheel's integer tick
    # is reached but the float clock is still short of the deadline.
    wheel = TimerWheel()
    deadline = RESOLUTION_NS * 10 + 17.5
    wheel.schedule(deadline, 1, Waiters())
    assert wheel.collect(RESOLUTION_NS * 10) == []
    assert [e.seq for e in wheel.collect(deadline)] == [1]


@pytest.mark.parametrize(
    "deadline",
    [
        RESOLUTION_NS * SLOTS * 3,  # level 1
        RESOLUTION_NS * SLOTS**2 * 5,  # level 2
        RESOLUTION_NS * SLOTS**3 * 2,  # level 3 (top)
        1e12,  # ~17 simulated minutes, beyond every level span
    ],
)
def test_far_deadlines_fire_once_exactly(deadline):
    wheel = TimerWheel()
    wheel.schedule(deadline, 1, Waiters())
    assert wheel.collect(deadline - 1.0) == []
    assert [e.seq for e in wheel.collect(deadline)] == [1]
    assert wheel.collect(deadline + 1e9) == []


def test_outer_level_entries_cascade_down():
    wheel = TimerWheel()
    base = RESOLUTION_NS * SLOTS * 4
    for seq, offset in enumerate([0.0, 64.0, 640.0], start=1):
        wheel.schedule(base + offset, seq, Waiters())
    assert wheel.cascades == 0
    assert wheel.collect(base - RESOLUTION_NS) == []
    # Landing on the group's level-1 slot fires the first entry and
    # cascades the still-future ones down into level-0 slots.
    assert [e.seq for e in wheel.collect(base)] == [1]
    assert wheel.cascades > 0
    assert [e.seq for e in wheel.collect(base + 640.0)] == [2, 3]


def test_dead_entries_dropped_silently():
    wheel = TimerWheel()
    live = Waiters(1)
    dead = Waiters(0)
    wheel.schedule(100.0, 1, dead)
    wheel.schedule(200.0, 2, live)
    assert len(wheel) == 2  # raw count: loop-condition truthiness
    assert wheel.live_count() == 1  # but only one is worth waiting for
    due = wheel.collect(300.0)
    assert [e.seq for e in due] == [2]
    assert len(wheel) == 0


def test_cancel_then_fire_boundary():
    # A waiter that leaves *after* scheduling (killed, woken through
    # another path) empties the queue in place; collect must drop the
    # entry instead of firing it.
    wheel = TimerWheel()
    waiters = Waiters(1)
    wheel.schedule(500.0, 1, waiters)
    waiters.n = 0
    assert wheel.collect(1_000.0) == []
    assert len(wheel) == 0 and wheel.live_count() == 0


def test_next_live_deadline_skips_dead_timers():
    wheel = TimerWheel()
    dead = Waiters(0)
    wheel.schedule(100.0, 1, dead)
    assert wheel.next_live_deadline() is None
    wheel.schedule(RESOLUTION_NS * SLOTS * 7, 2, Waiters(2))
    assert wheel.next_live_deadline() == RESOLUTION_NS * SLOTS * 7
    assert wheel.live_count() == 1


def test_interleaved_schedule_and_collect_preserve_order():
    wheel = TimerWheel()
    fired = []
    wheel.schedule(1_000.0, 1, Waiters())
    fired += [e.seq for e in wheel.collect(1_000.0)]
    # Re-arm behind the already-advanced wheel: a past deadline must
    # still fire on the next collect (never lost in a swept slot).
    wheel.schedule(900.0, 2, Waiters())
    wheel.schedule(2_000.0, 3, Waiters())
    fired += [e.seq for e in wheel.collect(1_500.0)]
    fired += [e.seq for e in wheel.collect(2_000.0)]
    assert fired == [1, 2, 3]


# --- scheduler-level regression: timers for killed sleepers ---------------


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "time"],
            compartments=[["sched", "alloc", "libc", "time"]],
            backend="none",
        )
    )


def test_killed_sleeper_leaves_no_pending_timer(image):
    """Killing a sleeper disarms its wake-up for accounting purposes.

    Regression: the heap-based scheduler kept the timer entry, so
    ``pending_timers`` over-reported, the idle path advanced the clock
    to a deadline nobody waited on, and the "fire" charged a wait-queue
    operation to wake zero threads.
    """
    time_lib = image.lib("time")
    scheduler = image.scheduler
    woke = []

    def sleeper_body():
        yield from time_lib.sleep_ns(50_000_000)  # 50 ms: far future
        woke.append(1)

    sleeper = image.spawn("sleeper", sleeper_body, time_lib)

    def killer_body():
        yield YIELD
        scheduler.kill_thread(sleeper)

    image.spawn("killer", killer_body, time_lib)
    image.run()
    assert woke == []
    assert scheduler.pending_timers == 0
    # Tickless idle must not have chased the dead deadline.
    assert image.machine.cpu.clock_ns < 50_000_000


def test_live_sleeper_still_wakes_next_to_dead_one(image):
    time_lib = image.lib("time")
    scheduler = image.scheduler
    order = []

    def dead_body():
        yield from time_lib.sleep_ns(5_000)
        order.append("dead")

    def live_body():
        yield from time_lib.sleep_ns(10_000)
        order.append("live")

    victim = image.spawn("victim", dead_body, time_lib)

    def killer_body():
        yield YIELD
        scheduler.kill_thread(victim)

    image.spawn("live", live_body, time_lib)
    image.spawn("killer", killer_body, time_lib)
    image.run()
    assert order == ["live"]
    assert scheduler.pending_timers == 0
    assert image.machine.cpu.clock_ns >= 10_000
