"""LibC edge cases not covered by the main suite."""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )


def test_memcmp_zero_length(image):
    assert image.call("libc", "memcmp", 0x1000, 0x2000, 0) == 0


def test_strlen_without_terminator(image):
    libc = image.lib("libc")
    libc.STRLEN_LIMIT = 64  # keep the scan short for the test
    addr = image.call("alloc", "malloc", 256)
    context = image.compartment_of("libc").make_context()
    image.machine.cpu.push_context(context)
    try:
        image.machine.store(addr, b"\x01" * 256)
        with pytest.raises(GateError, match="no terminator"):
            libc.strlen(addr)
    finally:
        image.machine.cpu.pop_context()
        type(libc).STRLEN_LIMIT = 1 << 20  # restore the class default


def test_sem_p_on_unknown_semaphore(image):
    libc = image.lib("libc")
    errors = []

    def body():
        try:
            yield from libc.sem_p(42)
        except GateError as error:
            errors.append(error)

    image.spawn("t", body, libc)
    image.run()
    assert len(errors) == 1


def test_sem_p_timeout_unknown_semaphore(image):
    libc = image.lib("libc")

    def body():
        yield from libc.sem_p_timeout(42, 1e9)

    image.spawn("t", body, libc)
    with pytest.raises(GateError):
        image.run()


def test_memcpy_charges_scale_with_size(image):
    libc = image.lib("libc")
    src = image.call("alloc", "malloc", 4096)
    dst = image.call("alloc", "malloc", 4096)
    context = image.compartment_of("libc").make_context()
    machine = image.machine
    machine.cpu.push_context(context)
    try:
        start = machine.cpu.clock_ns
        libc.memcpy(dst, src, 64)
        small = machine.cpu.clock_ns - start
        start = machine.cpu.clock_ns
        libc.memcpy(dst, src, 4096)
        large = machine.cpu.clock_ns - start
        assert large > small * 10
    finally:
        machine.cpu.pop_context()
