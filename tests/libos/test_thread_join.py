"""thread_join and the image memory report."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )


def test_join_waits_for_completion(image):
    libc = image.lib("libc")
    order = []

    def worker():
        for step in range(3):
            order.append(f"work{step}")
            yield YIELD

    worker_thread = image.spawn("worker", worker, libc)

    def joiner():
        yield from image.scheduler.thread_join(worker_thread.tid)
        order.append("joined")

    image.spawn("joiner", joiner, libc)
    image.run()
    assert order == ["work0", "work1", "work2", "joined"]


def test_join_finished_thread_returns_immediately(image):
    libc = image.lib("libc")

    def quick():
        yield YIELD

    thread = image.spawn("quick", quick, libc)
    image.run()
    assert thread.done
    done = []

    def joiner():
        result = yield from image.scheduler.thread_join(thread.tid)
        done.append(result)

    image.spawn("joiner", joiner, libc)
    image.run()
    assert done == [True]


def test_multiple_joiners_all_wake(image):
    libc = image.lib("libc")

    def worker():
        yield YIELD
        yield YIELD

    worker_thread = image.spawn("worker", worker, libc)
    joined = []

    def make_joiner(tag):
        def body():
            yield from image.scheduler.thread_join(worker_thread.tid)
            joined.append(tag)

        return body

    for tag in ("a", "b", "c"):
        image.spawn(tag, make_joiner(tag), libc)
    image.run()
    assert sorted(joined) == ["a", "b", "c"]


def test_join_through_gate(image):
    """thread_join is a blocking export usable across compartments."""
    split = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
        )
    )
    mq = split.lib("mq")
    libc = split.lib("libc")

    def worker():
        yield YIELD

    worker_thread = split.spawn("worker", worker, libc)
    done = []

    def joiner():
        stub = mq.stub("sched")
        result = yield from stub.call_gen("thread_join", worker_thread.tid)
        done.append(result)

    split.spawn("joiner", joiner, mq)
    split.run()
    assert done == [True]


def test_killed_thread_wakes_joiners(image):
    libc = image.lib("libc")

    def forever():
        while True:
            yield YIELD

    victim = image.spawn("victim", forever, libc)
    joined = []

    def joiner():
        yield from image.scheduler.thread_join(victim.tid)
        joined.append(1)

    image.spawn("joiner", joiner, libc)
    image.run(max_switches=10)
    image.scheduler.kill_thread(victim)
    image.run()
    assert joined == [1]


def test_memory_report(image):
    rows = image.memory_report()
    assert len(rows) == 1
    row = rows[0]
    assert row["owned_bytes"] > 0  # static regions + heap + stacks
    before = row["heap_in_use"]
    image.call("alloc", "malloc", 512)
    after = image.memory_report()[0]
    assert after["heap_in_use"] >= before + 512
    assert after["heap_live_blocks"] >= 1
    image.call("alloc", "malloc_shared", 256)
    assert image.memory_report()[0]["shared_in_use"] >= 256
