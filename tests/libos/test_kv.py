"""Unit tests for the kv micro-library: bitcask log over blk."""

import random

import pytest

from repro import BuildConfig, build_image
from repro.libos.blk.blkdev import DiskMedium
from repro.libos.kv.store import MAX_VALUE, KVStoreLibrary
from repro.machine.faults import GateError


def make_image(medium=None, backend="none", policy=None):
    img = build_image(
        BuildConfig(
            libraries=["libc", "blk", "kv"],
            compartments=[["blk", "kv"], ["sched", "alloc", "libc"]],
            backend=backend,
        )
    )
    if medium is not None:
        img.lib("blk").attach_medium(medium)
    if policy is not None:
        img.call("kv", "set_flush_policy", policy)
    return img


@pytest.fixture
def medium():
    return DiskMedium()


@pytest.fixture
def image(medium):
    return make_image(medium)


@pytest.fixture
def buf(image):
    return image.call("alloc", "malloc_shared", max(8192, MAX_VALUE))


def put(image, buf, key, value):
    space = image.compartments[0].address_space
    image.machine.dma_write(space, buf, value)
    return image.call("kv", "put", key, buf, len(value))


def get(image, buf, key):
    n = image.call("kv", "get", key, buf)
    if n < 0:
        return None
    space = image.compartments[0].address_space
    return image.machine.dma_read(space, buf, n)


# --- basic operations --------------------------------------------------------


def test_put_get_roundtrip(image, buf):
    put(image, buf, b"alpha", b"value-1")
    assert get(image, buf, b"alpha") == b"value-1"
    assert get(image, buf, b"missing") is None


def test_overwrite_returns_latest(image, buf):
    put(image, buf, b"k", b"first")
    put(image, buf, b"k", b"second-longer-value")
    assert get(image, buf, b"k") == b"second-longer-value"
    assert image.call("kv", "kv_keys") == [b"k"]


def test_delete_tombstones(image, buf):
    put(image, buf, b"gone", b"x")
    assert image.call("kv", "delete", b"gone") == 1
    assert get(image, buf, b"gone") is None
    assert image.call("kv", "delete", b"gone") == 0
    assert image.call("kv", "kv_keys") == []


def test_empty_value_allowed(image, buf):
    put(image, buf, b"empty", b"")
    assert get(image, buf, b"empty") == b""


def test_value_and_key_validation(image, buf):
    with pytest.raises(GateError, match="value length"):
        image.call("kv", "put", b"k", buf, MAX_VALUE + 1)
    with pytest.raises(GateError, match="value length"):
        image.call("kv", "put", b"k", buf, -1)
    with pytest.raises(GateError, match="key"):
        image.call("kv", "put", b"", buf, 1)


def test_max_value_roundtrip(image, buf):
    value = bytes(range(256)) * (MAX_VALUE // 256)
    put(image, buf, b"big", value)
    assert get(image, buf, b"big") == value


def test_flush_policy_validation(image):
    assert image.call("kv", "set_flush_policy", "batch:8") == "batch:8"
    assert image.call("kv", "set_flush_policy", "every-write") == "every-write"
    with pytest.raises(GateError):
        image.call("kv", "set_flush_policy", "batch:zero")
    with pytest.raises(GateError):
        image.call("kv", "set_flush_policy", "lazy")


def test_sync_advances_durable_seq(medium):
    image = make_image(medium, policy="batch:1000")
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    for index in range(5):
        put(image, buf, b"k%d" % index, b"v%d" % index)
    stats = image.call("kv", "kv_stats")
    assert stats["durable_seq"] < stats["seq"]
    durable = image.call("kv", "sync")
    assert durable == stats["seq"]
    assert image.call("kv", "kv_stats")["durable_seq"] == durable


# --- durability across reboot ------------------------------------------------


def test_reboot_recovers_flushed_state(medium):
    image = make_image(medium, policy="every-write")
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    expected = {}
    for index in range(60):
        key = b"key%03d" % (index % 20)
        value = (b"V%03d" % index) * 10
        put(image, buf, key, value)
        expected[key] = value
    image.call("kv", "delete", b"key005")
    del expected[b"key005"]

    img2 = make_image(medium)
    buf2 = img2.call("alloc", "malloc_shared", MAX_VALUE)
    report = img2.call("kv", "recover")
    assert report["live_keys"] == len(expected)
    assert report["torn_discarded"] == 0
    for key, value in expected.items():
        assert get(img2, buf2, key) == value
    assert get(img2, buf2, b"key005") is None


def test_recovery_uses_hints_for_sealed_segments(medium):
    image = make_image(medium, policy="batch:16")
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    # Enough records to seal several segments.
    for index in range(200):
        put(image, buf, b"h%03d" % (index % 40), (b"%03d" % index) * 30)
    image.call("kv", "sync")
    slots_used = image.call("kv", "kv_stats")["slots_used"]
    assert slots_used > 1

    img2 = make_image(medium)
    img2.call("kv", "recover")
    stats = img2.call("kv", "kv_stats")
    assert stats["hint_hits"] >= slots_used - 1  # all sealed slots
    assert stats["hint_misses"] == 0


def test_compaction_reclaims_space_and_preserves_data(medium):
    image = make_image(medium, policy="batch:32")
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    expected = {}
    for index in range(300):
        key = b"c%02d" % (index % 25)
        value = (b"%04d" % index) * 25
        put(image, buf, key, value)
        expected[key] = value
    before = image.call("kv", "kv_stats")
    report = image.call("kv", "compact")
    after = image.call("kv", "kv_stats")
    assert report["live_records"] == 25
    assert report["slots_after"] <= report["slots_before"]
    assert after["compactions"] == before["compactions"] + 1
    for key, value in expected.items():
        assert get(image, buf, key) == value

    # Recovery time scales with live data, not log length: the
    # compacted log recovers from far fewer records.
    img2 = make_image(medium)
    rec = img2.call("kv", "recover")
    assert rec["records"] <= 2 * 25 + 2  # live set + manifest slack
    buf2 = img2.call("alloc", "malloc_shared", MAX_VALUE)
    for key, value in expected.items():
        assert get(img2, buf2, key) == value


def test_crash_preserves_acked_writes_and_discards_torn(medium):
    image = make_image(medium, policy="every-write")
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    acked = {}
    for index in range(25):
        key = b"a%02d" % index
        value = b"durable-%04d" % index
        put(image, buf, key, value)
        acked[key] = value
    # Unflushed junk that the crash may tear or drop.
    image.call("kv", "set_flush_policy", "batch:1000")
    for index in range(20):
        put(image, buf, b"junk%02d" % index, b"J%04d" % index)
    image.lib("blk").crash(random.Random(99))

    img2 = make_image(medium)
    buf2 = img2.call("alloc", "malloc_shared", MAX_VALUE)
    img2.call("kv", "recover")
    for key, value in acked.items():
        assert get(img2, buf2, key) == value
    # Whatever junk survived must be byte-exact, never torn garbage.
    for key in img2.call("kv", "kv_keys"):
        if key.startswith(b"junk"):
            index = int(key[4:])
            assert get(img2, buf2, key) == b"J%04d" % index


def test_recovery_metrics_and_counters(medium):
    image = make_image(medium, policy="every-write")
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    for index in range(10):
        put(image, buf, b"m%d" % index, b"v")
    img2 = make_image(medium)
    img2.call("kv", "recover")
    counters = img2.machine.cpu.metrics.counters
    assert counters.get("kv.recoveries", 0) >= 1
    histogram = img2.machine.cpu.metrics.histogram("kv.recovery_ns")
    assert histogram.count >= 1
    assert counters.get("kv.appends", 0) == 0  # recovery replays, not appends
    stats = img2.call("kv", "kv_stats")
    assert stats["live_keys"] == 10


def test_kv_across_mpk_boundary(medium):
    """The storage compartment works behind real MPK gates."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "blk", "kv"],
            compartments=[["blk", "kv"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
        )
    )
    image.lib("blk").attach_medium(medium)
    buf = image.call("alloc", "malloc_shared", MAX_VALUE)
    space = image.compartments[0].address_space
    image.machine.dma_write(space, buf, b"across-pkeys")
    image.call("kv", "put", b"mpk", buf, 12)
    n = image.call("kv", "get", b"mpk", buf)
    assert image.machine.dma_read(space, buf, n) == b"across-pkeys"


def test_kv_spec_metadata_is_complete():
    assert KVStoreLibrary.SPEC.strip()
    assert "Requires" in KVStoreLibrary.SPEC
    assert KVStoreLibrary.POINTER_PARAMS["put"] == (1,)
    assert KVStoreLibrary.CAP_GRANTS["get"] == ((1, -MAX_VALUE),)
    calls = KVStoreLibrary.TRUE_BEHAVIOR["calls"]
    assert "blk::blk_flush" in calls and "alloc::malloc_shared" in calls
