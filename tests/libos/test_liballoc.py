"""Unit tests for the alloc micro-library (gated malloc service)."""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )


def test_malloc_free_roundtrip(image):
    addr = image.call("alloc", "malloc", 128)
    machine = image.machine
    context = image.compartment_of("alloc").make_context("test")
    machine.cpu.push_context(context)
    machine.store(addr, b"hello heap")
    assert machine.load(addr, 10) == b"hello heap"
    machine.cpu.pop_context()
    image.call("alloc", "free", addr)


def test_shared_allocations(image):
    addr = image.call("alloc", "malloc_shared", 64)
    stats = image.call("alloc", "heap_stats")
    assert stats["shared_live"] >= 1
    image.call("alloc", "free_shared", addr)


def test_batch_shared_allocations(image):
    addrs = image.call("alloc", "malloc_shared_many", 256, 8)
    assert len(addrs) == 8
    assert len(set(addrs)) == 8
    image.call("alloc", "free_shared_many", addrs)
    stats = image.call("alloc", "heap_stats")
    assert stats["shared_live"] == 0


def test_heap_stats_track_private(image):
    before = image.call("alloc", "heap_stats")
    addr = image.call("alloc", "malloc", 512)
    during = image.call("alloc", "heap_stats")
    assert during["private_in_use"] >= before["private_in_use"] + 512
    assert during["private_live"] == before["private_live"] + 1
    image.call("alloc", "free", addr)


def test_replicated_allocators_are_per_compartment():
    image = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
        )
    )
    mq_comp = image.compartment_of("mq")
    libc_comp = image.compartment_of("libc")
    assert mq_comp.allocator is not libc_comp.allocator
    # Shared heap is a single instance.
    assert mq_comp.shared_allocator is libc_comp.shared_allocator


def test_unconfigured_heap_raises():
    from repro.libos.alloc.liballoc import AllocLibrary
    from repro.libos.compartment import Compartment
    from repro.libos.library import Linker
    from repro.machine.machine import Machine

    machine = Machine()
    space = machine.new_address_space("main")
    compartment = Compartment(0, "c", machine)
    compartment.address_space = space
    lib = AllocLibrary()
    lib.install(machine, compartment, Linker())
    with pytest.raises(GateError):
        lib.malloc(16)
    with pytest.raises(GateError):
        lib.malloc_shared(16)
