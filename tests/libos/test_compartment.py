"""Unit tests for runtime compartments."""

import pytest

from repro.libos.compartment import Compartment
from repro.machine.address_space import Permissions
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys, pkru_readable, pkru_writable


@pytest.fixture
def machine():
    return Machine()


def test_requires_address_space(machine):
    compartment = Compartment(0, "c0", machine)
    with pytest.raises(RuntimeError):
        compartment.alloc_region(64)
    with pytest.raises(RuntimeError):
        compartment.make_context()
    with pytest.raises(RuntimeError):
        compartment.alloc_stack(4096)


def test_alloc_region_uses_own_pkey(machine):
    space = machine.new_address_space("main")
    compartment = Compartment(0, "c0", machine)
    compartment.address_space = space
    compartment.pkey = 5
    addr = compartment.alloc_region(64)
    assert space.entry(addr).pkey == 5


def test_alloc_region_defaults_to_key_zero(machine):
    space = machine.new_address_space("main")
    compartment = Compartment(0, "flat", machine)
    compartment.address_space = space
    addr = compartment.alloc_region(64)
    assert space.entry(addr).pkey == 0


def test_stack_pkey_policy(machine):
    space = machine.new_address_space("main")
    compartment = Compartment(0, "c0", machine)
    compartment.address_space = space
    compartment.pkey = 3
    # Switched-stack policy: stacks carry the compartment's key.
    addr = compartment.alloc_stack(4096)
    assert space.entry(addr).pkey == 3
    # Shared-stack policy: stacks carry the global stack key.
    compartment.stack_pkey = 15
    addr = compartment.alloc_stack(4096)
    assert space.entry(addr).pkey == 15


def test_make_context_carries_pkru_and_profile(machine):
    space = machine.new_address_space("main")
    compartment = Compartment(1, "c1", machine)
    compartment.address_space = space
    compartment.pkey = 2
    compartment.pkru_value = pkru_for_keys(writable=[2, 14])
    context = compartment.make_context("test")
    assert context.address_space is space
    assert pkru_writable(context.pkru, 2)
    assert pkru_writable(context.pkru, 14)
    assert not pkru_readable(context.pkru, 3)
    assert context.profile is compartment.profile
    assert context.label == "test"


def test_context_default_label_is_name(machine):
    space = machine.new_address_space("main")
    compartment = Compartment(0, "web", machine)
    compartment.address_space = space
    assert compartment.make_context().label == "web"


def test_alloc_region_perms(machine):
    space = machine.new_address_space("main")
    compartment = Compartment(0, "c0", machine)
    compartment.address_space = space
    addr = compartment.alloc_region(64, perms=Permissions.READ)
    assert space.entry(addr).perms == Permissions.READ
