"""Unit tests for micro-library exports, linker, and stubs."""

import pytest

from repro.gates import make_channel
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, Stub, export, export_blocking
from repro.machine.faults import GateError
from repro.machine.machine import Machine


class EchoLibrary(MicroLibrary):
    NAME = "echo"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    @export
    def ping(self, value):
        return ("pong", value)

    @export_blocking
    def slow_ping(self, value):
        yield from ()
        return ("slow-pong", value)

    def helper(self):
        return "not exported"


class CallerLibrary(MicroLibrary):
    NAME = "caller"
    SPEC = "[Memory access] Read(Own); Write(Own)"


@pytest.fixture
def world():
    machine = Machine()
    space = machine.new_address_space("main")
    compartment = Compartment(0, "flat", machine)
    compartment.address_space = space
    linker = Linker()
    echo = EchoLibrary()
    caller = CallerLibrary()
    echo.install(machine, compartment, linker)
    caller.install(machine, compartment, linker)
    linker.connect("caller", "echo", make_channel("direct", machine, caller, echo))
    machine.boot_context(space)
    return machine, compartment, linker, echo, caller


def test_name_required():
    class Nameless(MicroLibrary):
        pass

    with pytest.raises(ValueError):
        Nameless()


def test_exports_collected(world):
    _, _, _, echo, _ = world
    assert set(echo.exports) == {"ping", "slow_ping"}
    assert echo.blocking_exports == {"slow_ping"}


def test_non_exported_methods_hidden(world):
    _, _, _, echo, _ = world
    assert "helper" not in echo.exports


def test_install_registers_in_compartment(world):
    _, compartment, _, echo, caller = world
    assert echo in compartment.libraries
    assert compartment.library_names() == ["echo", "caller"]


def test_stub_call(world):
    _, _, _, _, caller = world
    stub = caller.stub("echo")
    assert isinstance(stub, Stub)
    assert stub.call("ping", 42) == ("pong", 42)


def test_stub_call_gen(world):
    _, _, _, _, caller = world
    result = yield_from_driver(caller.stub("echo").call_gen("slow_ping", 7))
    assert result == ("slow-pong", 7)


def yield_from_driver(gen):
    """Drive a generator that yields nothing and return its value."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator yielded unexpectedly")


def test_unresolved_link_raises(world):
    _, _, _, _, caller = world
    with pytest.raises(GateError):
        caller.stub("nonexistent")


def test_uninstalled_library_cannot_link():
    orphan = CallerLibrary()
    with pytest.raises(GateError):
        orphan.stub("echo")
    with pytest.raises(GateError):
        orphan.alloc_static(64)


def test_linker_edges(world):
    _, _, linker, _, _ = world
    assert ("caller", "echo") in set(linker.edges())


def test_alloc_static_maps_memory(world):
    machine, _, _, echo, _ = world
    addr = echo.alloc_static(100)
    machine.store(addr, b"static data")
    assert machine.load(addr, 11) == b"static data"


def test_charge_advances_clock(world):
    machine, _, _, echo, _ = world
    before = machine.cpu.clock_ns
    echo.charge(12.5)
    assert machine.cpu.clock_ns == before + 12.5


def test_plain_call_on_blocking_export_rejected(world):
    _, _, _, _, caller = world
    stub = caller.stub("echo")
    with pytest.raises(GateError):
        stub.call("slow_ping", 1)


def test_gen_call_on_plain_export_rejected(world):
    _, _, _, _, caller = world
    stub = caller.stub("echo")
    with pytest.raises(GateError):
        next(stub.call_gen("ping", 1))


def test_unknown_export_rejected(world):
    _, _, _, _, caller = world
    with pytest.raises(GateError):
        caller.stub("echo").call("no_such_fn")
