"""Unit tests for the cooperative scheduler and thread machinery."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD, Block, ThreadState, WaitQueue
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )


def spawn(image, name, body_factory):
    return image.spawn(name, body_factory, image.lib("libc"))


def test_single_thread_runs_to_completion(image):
    log = []

    def body():
        log.append("a")
        yield YIELD
        log.append("b")

    thread = spawn(image, "t", body)
    switches = image.run()
    assert log == ["a", "b"]
    assert thread.done
    assert switches == 2


def test_round_robin_interleaving(image):
    log = []

    def make(tag):
        def body():
            for step in range(3):
                log.append(f"{tag}{step}")
                yield YIELD

        return body

    spawn(image, "a", make("a"))
    spawn(image, "b", make("b"))
    image.run()
    assert log == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_block_and_wake(image):
    waitq = WaitQueue("test")
    log = []

    def waiter():
        log.append("wait")
        yield Block(waitq)
        log.append("woken")

    def waker():
        yield YIELD  # let the waiter park first
        image.scheduler.wake_one(waitq)
        log.append("signalled")
        yield YIELD

    thread = spawn(image, "waiter", waiter)
    spawn(image, "waker", waker)
    image.run()
    assert thread.done
    assert log == ["wait", "signalled", "woken"]


def test_blocked_thread_survives_run_exit(image):
    waitq = WaitQueue("never")

    def body():
        yield Block(waitq)

    thread = spawn(image, "stuck", body)
    image.run()
    assert thread.state is ThreadState.BLOCKED
    assert thread in waitq
    assert image.scheduler.blocked_threads == [thread]


def test_wake_all(image):
    waitq = WaitQueue("all")
    done = []

    def body():
        yield Block(waitq)
        done.append(1)

    for index in range(3):
        spawn(image, f"t{index}", body)
    image.run()
    assert image.scheduler.wake_one(waitq)  # still parked
    image.scheduler.wake_all(waitq)
    image.run()
    assert len(done) == 3


def test_until_stops_loop(image):
    progressed = []

    def body():
        while True:
            progressed.append(1)
            yield YIELD

    spawn(image, "spinner", body)
    image.run(until=lambda: len(progressed) >= 5)
    assert len(progressed) == 5
    assert image.scheduler.runnable == 1  # still runnable, loop paused


def test_max_switches(image):
    def body():
        while True:
            yield YIELD

    spawn(image, "spinner", body)
    switches = image.run(max_switches=7)
    assert switches == 7


def test_thread_rm(image):
    def body():
        while True:
            yield YIELD

    thread = spawn(image, "victim", body)
    image.scheduler.thread_rm(thread.tid)
    assert image.run() == 0
    with pytest.raises(GateError):
        image.scheduler.thread_rm(thread.tid)


def test_duplicate_thread_add_rejected(image):
    def body():
        yield YIELD

    thread = spawn(image, "once", body)
    with pytest.raises(GateError):
        image.scheduler.thread_add(thread)


def test_invalid_directive_rejected(image):
    def body():
        yield "nonsense"

    spawn(image, "bad", body)
    with pytest.raises(GateError):
        image.run()


def test_exception_in_thread_propagates(image):
    def body():
        yield YIELD
        raise RuntimeError("thread crashed")

    spawn(image, "crasher", body)
    with pytest.raises(RuntimeError, match="thread crashed"):
        image.run()


def test_context_switch_charges_paper_cost(image):
    def body():
        yield YIELD

    spawn(image, "t", body)
    start = image.clock_ns
    switches = image.run()
    per_switch = (image.clock_ns - start) / switches
    # Slightly above 76.6: the thread-exit wakeup check amortises in
    # (the dedicated microbenchmark pins the exact per-switch figure).
    assert per_switch == pytest.approx(76.6, rel=0.08)


def test_switch_statistics(image):
    def body():
        for _ in range(4):
            yield YIELD

    thread = spawn(image, "t", body)
    image.run()
    assert thread.switches == 5
    assert image.scheduler.total_switches == 5


def test_thread_context_isolation_across_switches():
    """A thread suspended inside a gate chain resumes with its full
    protection-context stack — another thread's contexts never leak."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
        )
    )
    qid = image.call("mq", "q_new", 1)
    mq = image.lib("mq")
    libc = image.lib("libc")
    observed = []

    def consumer():
        stub = libc.stub("mq")
        # Blocks inside mq (a foreign compartment) until pushed.
        item = yield from stub.call_gen("q_pop", qid)
        observed.append(("consumer", item, image.machine.cpu.current.label))

    def producer():
        yield YIELD  # let the consumer block deep inside mq first
        stub = libc.stub("mq")
        yield from stub.call_gen("q_push", qid, 0xAB, 4)
        observed.append(("producer", image.machine.cpu.current.label))

    image.spawn("consumer", consumer, libc)
    image.spawn("producer", producer, libc)
    image.run()
    kinds = [entry[0] for entry in observed]
    assert "consumer" in kinds and "producer" in kinds
    item = next(e[1] for e in observed if e[0] == "consumer")
    assert item == (0xAB, 4)
