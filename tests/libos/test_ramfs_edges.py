"""ramfs edge cases: EOF reads, sparse growth, unlink-while-open, stats."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.fs.ramfs import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    SEEK_END,
    SEEK_SET,
)
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "vfs"],
            compartments=[["sched", "alloc", "libc", "vfs"]],
            backend="none",
        )
    )


@pytest.fixture
def shared_buf(image):
    return image.call("alloc", "malloc_shared", 16384)


def put(image, addr, data):
    space = image.compartments[0].address_space
    image.machine.dma_write(space, addr, data)


def get(image, addr, n):
    space = image.compartments[0].address_space
    return image.machine.dma_read(space, addr, n)


# --- read past EOF -----------------------------------------------------------


def test_read_past_eof_returns_zero(image, shared_buf):
    fd = image.call("vfs", "open", "/f", O_RDWR | O_CREAT)
    put(image, shared_buf, b"abc")
    image.call("vfs", "write", fd, shared_buf, 3)
    # Offset is now at EOF: further reads drain nothing.
    assert image.call("vfs", "read", fd, shared_buf, 16) == 0
    # Seeking way past EOF must also read 0, not raise.
    image.call("vfs", "lseek", fd, 1000, SEEK_SET)
    assert image.call("vfs", "read", fd, shared_buf, 16) == 0


def test_short_read_at_eof(image, shared_buf):
    fd = image.call("vfs", "open", "/f", O_RDWR | O_CREAT)
    put(image, shared_buf, b"0123456789")
    image.call("vfs", "write", fd, shared_buf, 10)
    image.call("vfs", "lseek", fd, 6, SEEK_SET)
    assert image.call("vfs", "read", fd, shared_buf, 64) == 4
    assert get(image, shared_buf, 4) == b"6789"


def test_read_empty_file(image, shared_buf):
    fd = image.call("vfs", "open", "/empty", O_RDWR | O_CREAT)
    assert image.call("vfs", "read", fd, shared_buf, 4096) == 0
    assert image.call("vfs", "fstat", fd)["size"] == 0


# --- sparse files (lseek past EOF + write) -----------------------------------


def test_sparse_write_grows_file_and_zero_fills_hole(image, shared_buf):
    fd = image.call("vfs", "open", "/sparse", O_RDWR | O_CREAT)
    put(image, shared_buf, b"head")
    image.call("vfs", "write", fd, shared_buf, 4)
    # Leave a 6000-byte hole spanning a block boundary, then write.
    image.call("vfs", "lseek", fd, 6004, SEEK_SET)
    put(image, shared_buf, b"tail")
    image.call("vfs", "write", fd, shared_buf, 4)
    assert image.call("vfs", "fstat", fd)["size"] == 6008
    image.call("vfs", "lseek", fd, 0, SEEK_SET)
    put(image, shared_buf, b"\xff" * 6008)
    assert image.call("vfs", "read", fd, shared_buf, 6008) == 6008
    content = get(image, shared_buf, 6008)
    assert content[:4] == b"head"
    assert content[6004:] == b"tail"
    # The hole reads as zeros — not recycled heap bytes.
    assert content[4:6004] == b"\x00" * 6000


def test_sparse_hole_zeroed_even_after_heap_churn(image, shared_buf):
    # Dirty the heap so a lazily-allocated block would otherwise
    # inherit non-zero bytes from a freed predecessor.
    garbage = image.call("alloc", "malloc", 4096)
    ctx = image.compartments[0].make_context()
    image.machine.cpu.push_context(ctx)
    try:
        image.machine.fill(garbage, 0xAB, 4096)
    finally:
        image.machine.cpu.pop_context()
    image.call("alloc", "free", garbage)

    fd = image.call("vfs", "open", "/holes", O_RDWR | O_CREAT)
    image.call("vfs", "lseek", fd, 2048, SEEK_SET)
    put(image, shared_buf, b"x")
    image.call("vfs", "write", fd, shared_buf, 1)
    image.call("vfs", "lseek", fd, 0, SEEK_SET)
    image.call("vfs", "read", fd, shared_buf, 2048)
    assert get(image, shared_buf, 2048) == b"\x00" * 2048


def test_seek_end_then_extend(image, shared_buf):
    fd = image.call("vfs", "open", "/ext", O_RDWR | O_CREAT)
    put(image, shared_buf, b"base")
    image.call("vfs", "write", fd, shared_buf, 4)
    assert image.call("vfs", "lseek", fd, 0, SEEK_END) == 4
    put(image, shared_buf, b"+more")
    image.call("vfs", "write", fd, shared_buf, 5)
    assert image.call("vfs", "stat", "/ext")["size"] == 9


# --- unlink-while-open -------------------------------------------------------


def test_unlink_while_open_keeps_data_until_close(image, shared_buf):
    fd = image.call("vfs", "open", "/orphan", O_RDWR | O_CREAT)
    put(image, shared_buf, b"still here")
    image.call("vfs", "write", fd, shared_buf, 10)
    image.call("vfs", "unlink", "/orphan")
    # The path is gone ...
    with pytest.raises(GateError, match="no such file"):
        image.call("vfs", "stat", "/orphan")
    assert "/orphan" not in image.call("vfs", "listdir")
    # ... but the open descriptor still reads and writes the file.
    image.call("vfs", "lseek", fd, 0, SEEK_SET)
    assert image.call("vfs", "read", fd, shared_buf, 64) == 10
    assert get(image, shared_buf, 10) == b"still here"
    put(image, shared_buf, b"APPENDED")
    image.call("vfs", "write", fd, shared_buf, 8)
    assert image.call("vfs", "fstat", fd)["size"] == 18
    image.call("vfs", "close", fd)


def test_unlink_while_open_frees_blocks_on_last_close(image, shared_buf):
    before = image.compartments[0].allocator.bytes_in_use
    fd1 = image.call("vfs", "open", "/o", O_RDWR | O_CREAT)
    fd2 = image.call("vfs", "open", "/o", O_RDONLY)
    put(image, shared_buf, b"z" * 5000)  # two blocks
    image.call("vfs", "write", fd1, shared_buf, 5000)
    image.call("vfs", "unlink", "/o")
    assert image.compartments[0].allocator.bytes_in_use > before
    image.call("vfs", "close", fd1)
    # fd2 still holds the inode open.
    assert image.call("vfs", "read", fd2, shared_buf, 4) == 4
    image.call("vfs", "close", fd2)
    assert image.compartments[0].allocator.bytes_in_use == before


def test_recreate_after_unlink_while_open_is_a_new_file(image, shared_buf):
    fd_old = image.call("vfs", "open", "/name", O_RDWR | O_CREAT)
    put(image, shared_buf, b"old")
    image.call("vfs", "write", fd_old, shared_buf, 3)
    image.call("vfs", "unlink", "/name")
    fd_new = image.call("vfs", "open", "/name", O_RDWR | O_CREAT)
    put(image, shared_buf, b"new!")
    image.call("vfs", "write", fd_new, shared_buf, 4)
    # The old descriptor still sees the orphaned content.
    image.call("vfs", "lseek", fd_old, 0, SEEK_SET)
    image.call("vfs", "read", fd_old, shared_buf, 3)
    assert get(image, shared_buf, 3) == b"old"
    assert image.call("vfs", "stat", "/name")["size"] == 4


# --- fs_stats accounting -----------------------------------------------------


def test_fs_stats_accounting(image, shared_buf):
    stats = image.call("vfs", "fs_stats")
    assert stats == {"files": 0, "open_fds": 0, "reads": 0, "writes": 0}
    fd = image.call("vfs", "open", "/acct", O_RDWR | O_CREAT)
    put(image, shared_buf, b"data")
    image.call("vfs", "write", fd, shared_buf, 4)
    image.call("vfs", "write", fd, shared_buf, 4)
    image.call("vfs", "lseek", fd, 0, SEEK_SET)
    image.call("vfs", "read", fd, shared_buf, 8)
    stats = image.call("vfs", "fs_stats")
    assert stats["files"] == 1
    assert stats["open_fds"] == 1
    assert stats["writes"] == 2
    assert stats["reads"] == 1
    image.call("vfs", "close", fd)
    image.call("vfs", "unlink", "/acct")
    stats = image.call("vfs", "fs_stats")
    assert stats["files"] == 0
    assert stats["open_fds"] == 0
    # Op counters are cumulative, not tied to live files.
    assert stats["writes"] == 2 and stats["reads"] == 1
