"""Unit/integration tests for the network stack micro-library."""

import pytest

from repro import BuildConfig, build_image
from repro.apps.workload import IperfSource, _wait_for_listener
from repro.libos.net.packet import HEADER_SIZE, MSS, build_packet
from repro.machine.faults import GateError


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack"],
            compartments=[["sched", "alloc", "libc", "netstack"]],
            backend="none",
        )
    )


def inject(image, packets):
    """Feed fixed packets to the NIC and drain them via rx_process."""
    queue = list(packets)
    netstack = image.lib("netstack")
    netstack.nic.rx_source = lambda: queue.pop(0) if queue else None
    processed = 0
    context = image.compartment_of("netstack").make_context("inject")
    image.machine.cpu.push_context(context)
    try:
        for _ in range(200):
            if not queue and netstack.nic.rx_pending == 0:
                break
            image.machine.cpu.charge(2000)  # let the wire deliver
            processed += netstack.rx_process(64)
    finally:
        image.machine.cpu.pop_context()
    return processed


def recv_once(image, sockfd, buf, size):
    """Drive a single recv to completion host-side (data must be ready)."""
    netstack = image.lib("netstack")
    context = image.compartment_of("netstack").make_context("recv")
    image.machine.cpu.push_context(context)
    try:
        gen = netstack.recv(sockfd, buf, size)
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value
        raise AssertionError("recv blocked with data buffered")
    finally:
        image.machine.cpu.pop_context()


def test_listen_allocates_fds(image):
    fd1 = image.call("netstack", "listen", 80)
    fd2 = image.call("netstack", "listen", 81)
    assert fd1 != fd2
    assert image.call("netstack", "is_listening", 80)
    assert not image.call("netstack", "is_listening", 99)


def test_double_bind_rejected(image):
    image.call("netstack", "listen", 80)
    with pytest.raises(GateError):
        image.call("netstack", "listen", 80)


def test_rx_demux_and_recv_roundtrip(image):
    fd = image.call("netstack", "listen", 80)
    inject(image, [build_packet(80, b"first"), build_packet(80, b"second")])
    buf = image.call("alloc", "malloc_shared", 256)
    count = recv_once(image, fd, buf, 256)
    assert count == 11
    assert image.machine.dma_read(
        image.compartment_of("netstack").address_space, buf, 11
    ) == b"firstsecond"


def test_recv_partial_consumption(image):
    fd = image.call("netstack", "listen", 80)
    inject(image, [build_packet(80, b"abcdefghij")])
    buf = image.call("alloc", "malloc_shared", 64)
    assert recv_once(image, fd, buf, 4) == 4
    assert recv_once(image, fd, buf, 64) == 6
    space = image.compartment_of("netstack").address_space
    assert image.machine.dma_read(space, buf, 6) == b"efghij"


def test_packets_to_unknown_port_dropped(image):
    image.call("netstack", "listen", 80)
    inject(image, [build_packet(9999, b"stray")])
    stats = image.call("netstack", "net_stats")
    assert stats["rx_drops"] == 1


def test_send_segments_large_payloads(image):
    fd = image.call("netstack", "listen", 80)
    sent_frames = []
    netstack = image.lib("netstack")
    netstack.nic.tx_sink = sent_frames.append
    payload_len = 2 * MSS + 100
    buf = image.call("alloc", "malloc_shared", payload_len)
    space = image.compartment_of("netstack").address_space
    image.machine.dma_write(space, buf, b"Q" * payload_len)
    assert image.call("netstack", "send", fd, buf, payload_len) == payload_len
    assert len(sent_frames) == 3
    reassembled = b"".join(frame[HEADER_SIZE:] for frame in sent_frames)
    assert reassembled == b"Q" * payload_len


def test_send_zero_and_negative(image):
    fd = image.call("netstack", "listen", 80)
    assert image.call("netstack", "send", fd, 0, 0) == 0
    with pytest.raises(ValueError):
        image.call("netstack", "send", fd, 0, -1)


def test_bad_fd_rejected(image):
    with pytest.raises(GateError):
        image.call("netstack", "send", 77, 0, 4)


def test_recv_invalid_size(image):
    fd = image.call("netstack", "listen", 80)
    with pytest.raises(ValueError):
        recv_once(image, fd, 0, 0)


def test_stop_wakes_blocked_receiver(image):
    fd = image.call("netstack", "listen", 80)
    netstack = image.lib("netstack")
    buf = image.call("alloc", "malloc_shared", 64)
    results = []

    def body():
        count = yield from netstack.recv(fd, buf, 64)
        results.append(count)

    image.spawn("receiver", body, netstack)
    image.run(max_switches=50)
    assert results == []  # parked
    image.call("netstack", "stop")
    image.run(max_switches=50)
    assert results == [0]  # EOF


def test_net_stats_counts(image):
    fd = image.call("netstack", "listen", 80)
    inject(image, [build_packet(80, b"x" * 100)])
    stats = image.call("netstack", "net_stats")
    assert stats["rx_packets"] == 1
    assert stats["rx_bytes"] == 100 + HEADER_SIZE
    assert stats["open_sockets"] == 1


def test_mbuf_pool_is_stable_over_traffic(image):
    """mbufs recycle: shared-heap usage stays bounded over many packets."""
    fd = image.call("netstack", "listen", 80)
    buf = image.call("alloc", "malloc_shared", 4096)
    shared = image.compartment_of("netstack").shared_allocator
    for round_no in range(5):
        inject(image, [build_packet(80, b"d" * 1000) for _ in range(20)])
        while True:
            count = recv_once(image, fd, buf, 4096)
            conn = image.lib("netstack")._conns_by_fd[fd]
            if conn.bytes_buffered == 0:
                break
        if round_no == 0:
            baseline_use = shared.bytes_in_use
    assert shared.bytes_in_use <= baseline_use


def test_end_to_end_iperf_transfer_integrity(image):
    """Full thread-driven transfer: every byte accounted for."""
    netstack = image.lib("netstack")
    fd_holder = []
    total = 100_000
    received = []

    def server():
        fd = netstack.listen(5001)
        fd_holder.append(fd)
        buf = image.lib("alloc").malloc_shared(2048)
        got = 0
        while got < total:
            count = yield from netstack.recv(fd, buf, 2048)
            if count == 0:
                break
            got += count
        received.append(got)

    image.spawn("server", server, netstack)
    _wait_for_listener(image, 5001)
    netstack.nic.rx_source = IperfSource(5001, total)
    image.run(until=lambda: bool(received), max_switches=200_000)
    assert received == [total]
