"""The time micro-library and scheduler timers."""

import pytest

from repro import BuildConfig, build_image
from repro.libos.sched.base import YIELD, WaitQueue


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "time"],
            compartments=[["sched", "alloc", "libc", "time"]],
            backend="none",
        )
    )


def test_now_advances_with_work(image):
    first = image.call("time", "now_ns")
    image.machine.cpu.charge(500)
    second = image.call("time", "now_ns")
    assert second >= first + 500


def test_sleep_advances_clock_ticklessly(image):
    time_lib = image.lib("time")
    wakeups = []

    def body():
        start = time_lib.now_ns()
        yield from time_lib.sleep_ns(10_000)
        wakeups.append(time_lib.now_ns() - start)

    image.spawn("sleeper", body, time_lib)
    image.run()
    assert len(wakeups) == 1
    assert wakeups[0] >= 10_000
    # Tickless: no busy-wait, so the overshoot is small.
    assert wakeups[0] < 10_000 + 2_000


def test_multiple_sleepers_wake_in_deadline_order(image):
    time_lib = image.lib("time")
    order = []

    def make(tag, duration):
        def body():
            yield from time_lib.sleep_ns(duration)
            order.append(tag)

        return body

    image.spawn("late", make("late", 30_000), time_lib)
    image.spawn("early", make("early", 5_000), time_lib)
    image.spawn("mid", make("mid", 12_000), time_lib)
    image.run()
    assert order == ["early", "mid", "late"]


def test_sleep_zero_is_immediate(image):
    time_lib = image.lib("time")
    done = []

    def body():
        yield from time_lib.sleep_ns(0)
        done.append(1)

    image.spawn("instant", body, time_lib)
    image.run()
    assert done == [1]
    assert image.scheduler.pending_timers == 0


def test_negative_sleep_rejected(image):
    time_lib = image.lib("time")

    def body():
        yield from time_lib.sleep_ns(-1)

    image.spawn("bad", body, time_lib)
    with pytest.raises(ValueError):
        image.run()


def test_sleepers_coexist_with_busy_threads(image):
    """A busy thread advances the clock; the timer fires mid-workload
    without idle advancement."""
    time_lib = image.lib("time")
    events = []

    def sleeper():
        yield from time_lib.sleep_ns(2_000)
        events.append("woke")

    def busy():
        for _ in range(100):
            image.machine.cpu.charge(100)
            yield YIELD
        events.append("busy-done")

    image.spawn("sleeper", sleeper, time_lib)
    image.spawn("busy", busy, time_lib)
    image.run()
    assert events.index("woke") < events.index("busy-done")


def test_timer_register_direct(image):
    waitq = WaitQueue("manual")
    fired = []

    def body():
        from repro.libos.sched.base import Block

        yield Block(waitq)
        fired.append(1)

    image.spawn("waiter", body, image.lib("libc"))
    image.run(max_switches=5)
    image.scheduler.timer_register(image.clock_ns + 100, waitq)
    assert image.scheduler.pending_timers == 1
    image.run()
    assert fired == [1]
    assert image.scheduler.pending_timers == 0


def test_run_returns_when_only_past_timers(image):
    waitq = WaitQueue("past")
    image.scheduler.timer_register(0.0, waitq)  # already due, no waiters
    assert image.run() == 0
    assert image.scheduler.pending_timers == 0


def test_verified_scheduler_also_supports_timers():
    image = build_image(
        BuildConfig(
            libraries=["libc", "time"],
            compartments=[["sched", "alloc", "libc", "time"]],
            backend="none",
            scheduler="verified",
        )
    )
    time_lib = image.lib("time")
    done = []

    def body():
        yield from time_lib.sleep_ns(1_000)
        done.append(1)

    image.spawn("sleeper", body, time_lib)
    image.run()
    assert done == [1]
