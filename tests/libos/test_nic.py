"""Unit tests for the simulated NIC: rings, DMA, wire pacing."""

import pytest

from repro.libos.net.nic import NIC
from repro.machine.faults import GateError
from repro.machine.machine import Machine


@pytest.fixture
def world():
    machine = Machine()
    space = machine.new_address_space("main")
    machine.boot_context(space)
    nic = NIC(machine)
    nic.attach(space)
    buffers = [space.map_new(2048) for _ in range(4)]
    for addr in buffers:
        nic.post_rx_buffer(addr)
    return machine, space, nic, buffers


def test_poll_empty_without_source(world):
    machine, _, nic, _ = world
    assert nic.rx_poll() is None


def test_rx_delivers_packet_into_posted_buffer(world):
    machine, space, nic, buffers = world
    packets = [b"hello wire"]
    nic.rx_source = lambda: packets.pop(0) if packets else None
    descriptor = nic.rx_poll()
    assert descriptor is not None
    addr, length = descriptor
    assert addr in buffers
    assert length == 10
    assert machine.dma_read(space, addr, length) == b"hello wire"
    assert nic.rx_packets == 1
    assert nic.rx_bytes == 10


def test_rx_respects_posted_buffer_limit(world):
    machine, _, nic, _ = world
    nic.rx_source = lambda: b"x" * 100  # infinite source
    seen = 0
    # Give the wire ample time, then drain: only 4 buffers were posted,
    # so without reposting at most 4 packets can ever be delivered.
    for _ in range(20):
        machine.cpu.charge(
            machine.cost.wire_pkt_ns + 100 * machine.cost.wire_byte_ns + 1
        )
        if nic.rx_poll() is not None:
            seen += 1
    assert seen == 4
    assert nic.rx_buffers_posted == 0


def test_wire_paces_delivery(world):
    machine, _, nic, _ = world
    nic.rx_source = lambda: b"y" * 1000
    first = nic.rx_poll()
    assert first is not None
    # Immediately after, the wire has not finished the next packet.
    assert nic.rx_poll() is None
    # Advance simulated time past the serialisation delay.
    machine.cpu.charge(
        machine.cost.wire_pkt_ns + 1000 * machine.cost.wire_byte_ns + 1
    )
    assert nic.rx_poll() is not None


def test_wire_backlog_bursts(world):
    machine, _, nic, _ = world
    nic.rx_source = lambda: b"z" * 500
    assert nic.rx_poll() is not None
    # CPU busy for a long stretch: several packets accumulate.
    machine.cpu.charge(10 * (machine.cost.wire_pkt_ns + 500 * machine.cost.wire_byte_ns))
    burst = 0
    while nic.rx_poll() is not None:
        burst += 1
    assert burst == 3  # remaining posted buffers consumed in one burst


def test_tx_reaches_sink_and_counts(world):
    machine, space, nic, buffers = world
    sent = []
    nic.tx_sink = sent.append
    machine.dma_write(space, buffers[0], b"outbound!")
    nic.tx(buffers[0], 9)
    assert sent == [b"outbound!"]
    assert nic.tx_packets == 1
    assert nic.tx_bytes == 9


def test_tx_unattached_raises():
    nic = NIC(Machine())
    with pytest.raises(GateError):
        nic.tx(0, 1)


def test_poll_charges_costs(world):
    machine, _, nic, _ = world
    packets = [b"p" * 64]
    nic.rx_source = lambda: packets.pop(0) if packets else None
    before = machine.cpu.clock_ns
    nic.rx_poll()
    assert machine.cpu.clock_ns == before + machine.cost.nic_op_ns
    before = machine.cpu.clock_ns
    nic.rx_poll()  # empty poll: cheap doorbell read
    assert machine.cpu.clock_ns == pytest.approx(
        before + machine.cost.nic_op_ns / 8
    )


def test_idle_wire_does_not_accumulate(world):
    """A closed-loop source that was idle cannot deliver a burst."""
    machine, _, nic, _ = world
    served = []

    def source():
        if served:
            return None
        served.append(1)
        return b"req"

    nic.rx_source = source
    assert nic.rx_poll() is not None
    # Long idle period...
    machine.cpu.charge(1_000_000)
    served.clear()
    # ...then one new request: it arrives alone, not as a burst.
    assert nic.rx_poll() is not None
    assert nic.rx_poll() is None
