"""Timed waits: sem_p_timeout and recv_timeout."""

import pytest

from repro import BuildConfig, build_image
from repro.apps.workload import IperfSource, _wait_for_listener
from repro.libos.sched.base import YIELD


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "time"],
            compartments=[["sched", "alloc", "libc", "netstack", "time"]],
            backend="none",
        )
    )


def test_sem_p_timeout_times_out(image):
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 0)
    results = []

    def body():
        start = image.clock_ns
        acquired = yield from libc.sem_p_timeout(sem, image.clock_ns + 5_000)
        results.append((acquired, image.clock_ns - start))

    image.spawn("waiter", body, libc)
    image.run(until=lambda: bool(results), max_switches=100_000)
    acquired, waited = results[0]
    assert acquired is False
    assert waited >= 5_000


def test_sem_p_timeout_acquires_before_deadline(image):
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 0)
    results = []

    def waiter():
        acquired = yield from libc.sem_p_timeout(sem, image.clock_ns + 1e9)
        results.append(acquired)

    def poster():
        yield YIELD
        libc.sem_v(sem)

    image.spawn("waiter", waiter, libc)
    image.spawn("poster", poster, libc)
    image.run(until=lambda: bool(results), max_switches=100_000)
    assert results == [True]


def test_sem_p_timeout_fast_path_with_token(image):
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 1)
    results = []

    def body():
        acquired = yield from libc.sem_p_timeout(sem, 0.0)
        results.append(acquired)

    image.spawn("t", body, libc)
    image.run(until=lambda: bool(results), max_switches=100_000)
    assert results == [True]


def test_recv_timeout_expires_on_quiet_socket(image):
    netstack = image.lib("netstack")
    buf = image.call("alloc", "malloc_shared", 256)
    results = []

    def body():
        fd = netstack.listen(7000)
        count = yield from netstack.recv_timeout(fd, buf, 256, 20_000)
        results.append(count)

    image.spawn("server", body, netstack)
    image.run(until=lambda: bool(results), max_switches=200_000)
    assert results == [-1]


def test_recv_timeout_returns_data_when_available(image):
    netstack = image.lib("netstack")
    buf = image.call("alloc", "malloc_shared", 2048)
    results = []

    def body():
        fd = netstack.listen(7001)
        count = yield from netstack.recv_timeout(fd, buf, 2048, 1e9)
        results.append(count)

    image.spawn("server", body, netstack)
    _wait_for_listener(image, 7001)
    netstack.nic.rx_source = IperfSource(7001, 1000)
    image.run(until=lambda: bool(results), max_switches=10_000)
    assert results and results[0] == 1000


def test_recv_timeout_validates_arguments(image):
    netstack = image.lib("netstack")
    fd = image.call("netstack", "listen", 7002)

    def bad_size():
        yield from netstack.recv_timeout(fd, 0, 0, 100)

    image.spawn("bad", bad_size, netstack)
    with pytest.raises(ValueError):
        image.run(max_switches=1000)
