"""Unit and property tests for the first-fit heap allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.libos.alloc.allocator import ALIGNMENT, AllocationError, HeapAllocator
from repro.machine.machine import Machine


@pytest.fixture
def heap():
    machine = Machine()
    space = machine.new_address_space("main")
    base = space.map_new(64 * 1024)
    machine.boot_context(space)
    return HeapAllocator("test", machine, base, 64 * 1024)


def test_malloc_returns_aligned_addresses(heap):
    for size in (1, 7, 16, 100):
        addr = heap.malloc(size)
        assert addr % ALIGNMENT == 0


def test_malloc_blocks_do_not_overlap(heap):
    blocks = [(heap.malloc(100), 100) for _ in range(20)]
    ranges = sorted((addr, addr + heap.block_size(addr)) for addr, _ in blocks)
    for (_, a_end), (b_start, _) in zip(ranges, ranges[1:]):
        assert a_end <= b_start


def test_free_and_reuse(heap):
    addr = heap.malloc(1000)
    heap.free(addr)
    again = heap.malloc(1000)
    assert again == addr  # first fit reuses the freed block


def test_invalid_free_rejected(heap):
    with pytest.raises(AllocationError):
        heap.free(0xDEAD)
    addr = heap.malloc(10)
    heap.free(addr)
    with pytest.raises(AllocationError):
        heap.free(addr)  # double free


def test_zero_and_negative_malloc_rejected(heap):
    with pytest.raises(ValueError):
        heap.malloc(0)
    with pytest.raises(ValueError):
        heap.malloc(-5)


def test_exhaustion(heap):
    with pytest.raises(AllocationError):
        heap.malloc(128 * 1024)


def test_coalescing_allows_big_allocation_after_frees(heap):
    # Fill the heap with small blocks, free them all, then allocate one
    # block nearly the size of the heap: only works if frees coalesce.
    blocks = [heap.malloc(1024) for _ in range(60)]
    for addr in blocks:
        heap.free(addr)
    big = heap.malloc(60 * 1024)
    assert heap.owns(big)


def test_accounting(heap):
    a = heap.malloc(100)
    b = heap.malloc(200)
    assert heap.live_blocks == 2
    in_use = heap.bytes_in_use
    assert in_use >= 300
    assert heap.bytes_free + in_use == 64 * 1024
    heap.free(a)
    heap.free(b)
    assert heap.bytes_in_use == 0
    assert heap.total_allocs == 2
    assert heap.total_frees == 2


def test_contains_and_owns(heap):
    addr = heap.malloc(64)
    assert heap.contains(addr)
    assert heap.owns(addr)
    assert not heap.owns(addr + 1)
    assert not heap.contains(heap.base - 1)


def test_block_size_unknown(heap):
    with pytest.raises(AllocationError):
        heap.block_size(12345)


def test_malloc_charges_cost(heap):
    machine = heap.machine
    before = machine.cpu.clock_ns
    addr = heap.malloc(10)
    after_malloc = machine.cpu.clock_ns
    assert after_malloc == before + machine.cost.alloc_ns
    heap.free(addr)
    assert machine.cpu.clock_ns == after_malloc + machine.cost.free_ns


def test_invalid_heap_size():
    machine = Machine()
    with pytest.raises(ValueError):
        HeapAllocator("bad", machine, 0, 0)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=2048)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    )
)
def test_allocator_invariants_under_random_workload(ops):
    """Invariants: no overlap, accounting exact, free+used == heap size."""
    machine = Machine()
    space = machine.new_address_space("main")
    size = 128 * 1024
    base = space.map_new(size)
    machine.boot_context(space)
    heap = HeapAllocator("prop", machine, base, size)
    live: list[int] = []
    for op, value in ops:
        if op == "malloc":
            try:
                live.append(heap.malloc(value))
            except AllocationError:
                pass
        elif live:
            heap.free(live.pop(value % len(live)))
    # Accounting invariant.
    assert heap.bytes_in_use + heap.bytes_free == size
    assert heap.live_blocks == len(live)
    # No two live blocks overlap; all inside the heap.
    ranges = sorted((addr, addr + heap.block_size(addr)) for addr in live)
    for (a_start, a_end), (b_start, _) in zip(ranges, ranges[1:]):
        assert a_end <= b_start
    for start, end in ranges:
        assert heap.base <= start and end <= heap.base + size
    # Full cleanup coalesces back to one free region.
    for addr in live:
        heap.free(addr)
    assert heap.bytes_free == size
    assert heap.malloc(size - ALIGNMENT) is not None
