"""ARM MTE-style memory tagging hardener."""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import SHViolation
from repro.sh.mte import GRANULE, MteAllocator


def hardened_image(**kw):
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
            hardening={"libc": ("mte",)},
            **kw,
        )
    )


@pytest.fixture
def image():
    return hardened_image()


def in_libc(image):
    image.machine.cpu.push_context(
        image.compartment_of("libc").make_context("test")
    )


def test_allocator_is_wrapped(image):
    assert isinstance(image.compartment_of("libc").allocator, MteAllocator)


def test_tagged_access_allowed(image):
    addr = image.call("alloc", "malloc", 64)
    in_libc(image)
    try:
        image.machine.store(addr, b"q" * 64)
        assert image.machine.load(addr, 64) == b"q" * 64
    finally:
        image.machine.cpu.pop_context()


def test_untagged_heap_access_trapped(image):
    """Touching never-allocated heap space trips a tag-check fault."""
    heap = image.compartment_of("libc").allocator.inner
    in_libc(image)
    try:
        with pytest.raises(SHViolation, match="mte"):
            image.machine.load(heap.base + heap.size - 64, 8)
    finally:
        image.machine.cpu.pop_context()


def test_use_after_free_trapped(image):
    addr = image.call("alloc", "malloc", 64)
    image.call("alloc", "free", addr)
    in_libc(image)
    try:
        with pytest.raises(SHViolation, match="mte"):
            image.machine.load(addr, 8)
    finally:
        image.machine.cpu.pop_context()


def test_double_free_trapped(image):
    addr = image.call("alloc", "malloc", 64)
    image.call("alloc", "free", addr)
    with pytest.raises(SHViolation, match="double free"):
        image.call("alloc", "free", addr)


def test_overflow_into_free_space_trapped(image):
    addr = image.call("alloc", "malloc", 64)
    in_libc(image)
    try:
        with pytest.raises(SHViolation):
            image.machine.store(addr, b"y" * (64 + GRANULE))
    finally:
        image.machine.cpu.pop_context()


def test_granule_rounding_blind_spot(image):
    """The honest MTE weakness: overflow *within* the granule-rounded
    block is invisible (no redzones)."""
    addr = image.call("alloc", "malloc", 60)  # rounds to 64
    in_libc(image)
    try:
        image.machine.store(addr, b"z" * 64)  # 4 bytes past, undetected
    finally:
        image.machine.cpu.pop_context()


def test_non_heap_memory_unaffected(image):
    static = image.compartment_of("libc").alloc_region(64)
    in_libc(image)
    try:
        image.machine.store(static, b"static ok")
    finally:
        image.machine.cpu.pop_context()


def test_mte_cheaper_than_asan():
    cost = hardened_image().machine.cost
    assert cost.mte_mem_factor < cost.asan_mem_factor / 2
    # And end-to-end: MTE'd libc beats ASAN'd libc on iperf.
    from repro.apps import run_iperf

    def throughput(technique):
        image = build_image(
            BuildConfig(
                libraries=["libc", "netstack", "iperf"],
                compartments=[
                    ["netstack"],
                    ["sched"],
                    ["libc"],
                    ["alloc", "iperf"],
                ],
                backend="none",
                hardening={"libc": (technique,)},
            )
        )
        return run_iperf(image, 256, 1 << 17).throughput_mbps

    assert throughput("mte") > throughput("asan")


def test_mte_reuse_after_retag(image):
    addr = image.call("alloc", "malloc", 64)
    image.call("alloc", "free", addr)
    again = image.call("alloc", "malloc", 64)
    assert again == addr  # first-fit reuse
    in_libc(image)
    try:
        image.machine.store(again, b"fresh tag")
    finally:
        image.machine.cpu.pop_context()


def test_mte_spec_transformation():
    from repro.core.hardening import LibraryDef, transform_spec
    from repro.core.spec_parser import parse_spec

    libdef = LibraryDef(
        name="u",
        spec=parse_spec("u", "[Memory access] Read(*); Write(*)"),
        true_behavior={"writes": ["Own"], "reads": ["Own"]},
    )
    narrowed = transform_spec(libdef, ("mte",))
    assert not narrowed.writes_everything
    assert not narrowed.reads_everything
