"""ASAN hardener: cost effects + real bug catching (fault injection)."""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import SHViolation
from repro.sh.asan import AsanAllocator


def hardened_image(**kw):
    return build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
            hardening={"libc": ("asan",)},
            **kw,
        )
    )


@pytest.fixture
def image():
    return hardened_image()


def in_context(image, lib_name):
    context = image.compartment_of(lib_name).make_context("test")
    image.machine.cpu.push_context(context)
    return context


def test_allocator_is_wrapped(image):
    assert isinstance(image.compartment_of("libc").allocator, AsanAllocator)


def test_profile_factors_applied(image):
    profile = image.compartment_of("libc").profile
    cost = image.machine.cost
    assert profile.load_factor == pytest.approx(cost.asan_mem_factor)
    assert profile.store_factor == pytest.approx(cost.asan_mem_factor)
    assert len(profile.monitors) == 1


def test_in_bounds_access_allowed(image):
    addr = image.call("alloc", "malloc", 64)
    in_context(image, "libc")
    image.machine.store(addr, b"x" * 64)
    assert image.machine.load(addr, 64) == b"x" * 64
    image.machine.cpu.pop_context()


def test_heap_overflow_detected(image):
    addr = image.call("alloc", "malloc", 64)
    in_context(image, "libc")
    with pytest.raises(SHViolation, match="asan"):
        image.machine.store(addr, b"y" * 65)  # one byte past the block
    image.machine.cpu.pop_context()


def test_heap_underflow_detected(image):
    addr = image.call("alloc", "malloc", 64)
    in_context(image, "libc")
    with pytest.raises(SHViolation):
        image.machine.load(addr - 1, 2)
    image.machine.cpu.pop_context()


def test_use_after_free_detected(image):
    addr = image.call("alloc", "malloc", 64)
    image.call("alloc", "free", addr)
    in_context(image, "libc")
    with pytest.raises(SHViolation):
        image.machine.load(addr, 8)
    image.machine.cpu.pop_context()


def test_double_free_detected(image):
    addr = image.call("alloc", "malloc", 64)
    image.call("alloc", "free", addr)
    with pytest.raises(SHViolation, match="double free"):
        image.call("alloc", "free", addr)


def test_quarantine_eventually_recycles(image):
    allocator = image.compartment_of("libc").allocator
    addr = image.call("alloc", "malloc", 64)
    image.call("alloc", "free", addr)
    # Push enough frees through to evict the block from quarantine.
    for _ in range(AsanAllocator.QUARANTINE + 2):
        other = image.call("alloc", "malloc", 64)
        image.call("alloc", "free", other)
    allocator.flush_quarantine()
    in_context(image, "libc")
    fresh = image.call("alloc", "malloc", 64)
    image.machine.store(fresh, b"reuse ok")
    image.machine.cpu.pop_context()


def test_unhardened_compartment_not_monitored(image):
    # sched/alloc/libc share the compartment here, so build a split one.
    split = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="none",
            hardening={"libc": ("asan",)},
        )
    )
    assert split.compartment_of("mq").profile.monitors == []
    assert split.compartment_of("libc").profile.monitors


def test_asan_alloc_costs_charged(image):
    machine = image.machine
    cost = machine.cost
    before = machine.cpu.clock_ns
    addr = image.call("alloc", "malloc", 32)
    assert machine.cpu.clock_ns - before == pytest.approx(
        cost.alloc_ns + cost.asan_alloc_extra_ns
    )
    before = machine.cpu.clock_ns
    image.call("alloc", "free", addr)
    # The inner free is deferred by the quarantine; only ASAN's
    # poisoning work is charged at free time.
    assert machine.cpu.clock_ns - before == pytest.approx(
        cost.asan_free_extra_ns
    )


def test_global_allocator_wrapping_propagates():
    image = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="none",
            hardening={"mq": ("asan",)},
            allocator_policy="global",
        )
    )
    # ASAN was applied to mq's compartment, but the single global
    # allocator means *everyone* now allocates through the wrapper —
    # the paper's Fig. 4 mechanism.
    assert isinstance(image.compartment_of("libc").allocator, AsanAllocator)
    assert image.compartment_of("libc").allocator is image.compartment_of(
        "mq"
    ).allocator


def test_kasan_alias():
    image = build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
            hardening={"libc": ("kasan",)},
        )
    )
    assert isinstance(image.compartment_of("libc").allocator, AsanAllocator)
