"""Unit and property tests for the ASAN shadow map."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sh.asan import ShadowMap


def test_empty_shadow_never_intersects():
    shadow = ShadowMap()
    assert not shadow.intersects(0, 100)
    assert shadow.poisoned_intervals == 0


def test_poison_and_check():
    shadow = ShadowMap()
    shadow.poison(100, 116)
    assert shadow.intersects(100, 1)
    assert shadow.intersects(115, 1)
    assert shadow.intersects(90, 20)  # straddles the start
    assert shadow.intersects(110, 100)  # straddles the end
    assert not shadow.intersects(116, 10)
    assert not shadow.intersects(0, 100)


def test_unpoison_removes_interval():
    shadow = ShadowMap()
    shadow.poison(100, 116)
    shadow.poison(200, 216)
    shadow.unpoison(100)
    assert not shadow.intersects(100, 16)
    assert shadow.intersects(200, 1)
    shadow.unpoison(999)  # unknown start: no-op
    assert shadow.poisoned_intervals == 1


def test_empty_interval_ignored():
    shadow = ShadowMap()
    shadow.poison(50, 50)
    shadow.poison(60, 55)
    assert shadow.poisoned_intervals == 0


@given(
    intervals=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=1, max_value=64),
        ),
        max_size=30,
    ),
    probe=st.tuples(
        st.integers(min_value=0, max_value=10_100),
        st.integers(min_value=1, max_value=128),
    ),
)
def test_intersects_matches_naive_model(intervals, probe):
    """The bisect implementation agrees with a brute-force check."""
    # Build disjoint intervals by spacing them out deterministically.
    shadow = ShadowMap()
    placed = []
    cursor = 0
    for offset, length in intervals:
        start = cursor + offset
        end = start + length
        shadow.poison(start, end)
        placed.append((start, end))
        cursor = end + 1
    addr, size = probe
    expected = any(
        start < addr + size and end > addr for start, end in placed
    )
    assert shadow.intersects(addr, size) == expected
