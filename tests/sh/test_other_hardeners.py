"""CFI, DFI, UBSAN, stack protector, SafeStack hardeners."""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import SHViolation
from repro.sh import SH_TECHNIQUES, make_hardener
from repro.sh.stackprotector import place_canary, verify_canary


def build(hardening, groups=None, libs=None):
    return build_image(
        BuildConfig(
            libraries=libs or ["libc", "mq"],
            compartments=groups or [["mq"], ["sched", "alloc", "libc"]],
            backend="none",
            hardening=hardening,
        )
    )


# --- CFI -----------------------------------------------------------------


def test_cfi_allows_analysed_calls():
    image = build({"mq": ("cfi",)})
    # mq's analysed call graph includes libc::sem_new: allowed.
    qid = image.call("mq", "q_new", 4)
    assert image.call("mq", "q_len", qid) == 0
    assert image.stats().get("cfi_checks", 0) > 0


def test_cfi_blocks_unanalysed_call():
    image = build({"mq": ("cfi",)})
    mq = image.lib("mq")
    context = image.compartment_of("mq").make_context("hijacked")
    image.machine.cpu.push_context(context)
    try:
        # A hijacked mq tries to reach the allocator — not in its call
        # graph (mq only calls libc semaphore functions).
        stub = mq.stub("alloc")
        with pytest.raises(SHViolation, match="cfi"):
            stub.call("malloc", 64)
    finally:
        image.machine.cpu.pop_context()


def test_cfi_leaves_unknown_libraries_unchecked():
    # libc has analysed calls; iperf does too; but a library without
    # TRUE_BEHAVIOR["calls"] facts cannot be narrowed.  The redis app
    # has facts, so use sched (facts present) vs a fact check instead:
    image = build({"libc": ("cfi",)})
    # libc's analysed calls include sched::wake_one — exercised by
    # sem_v without violation.
    sem = image.call("libc", "sem_new", 0)
    image.call("libc", "sem_v", sem)


# --- DFI -----------------------------------------------------------------


def test_dfi_allows_own_and_shared_writes():
    image = build({"libc": ("dfi",)})
    context = image.compartment_of("libc").make_context("libc")
    machine = image.machine
    machine.cpu.push_context(context)
    try:
        own = image.compartment_of("libc").alloc_region(64)
        machine.store(own, b"own write ok")
        shared = image.call("alloc", "malloc_shared", 64)
        machine.store(shared, b"shared write ok")
    finally:
        machine.cpu.pop_context()


def test_dfi_blocks_foreign_write_under_mpk_semantics():
    image = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
            hardening={"mq": ("dfi",)},
        )
    )
    # A region owned by the libc compartment.
    victim = image.compartment_of("libc").alloc_region(64)
    context = image.compartment_of("mq").make_context("mq")
    machine = image.machine
    machine.cpu.push_context(context)
    try:
        with pytest.raises(SHViolation, match="dfi"):
            machine.store(victim, b"wild write")
    finally:
        machine.cpu.pop_context()


def test_dfi_store_factor_applied():
    image = build({"libc": ("dfi",)})
    profile = image.compartment_of("libc").profile
    assert profile.store_factor == pytest.approx(
        image.machine.cost.dfi_store_factor
    )
    assert profile.load_factor == 1.0


# --- UBSAN ----------------------------------------------------------------


def test_ubsan_scales_both_directions():
    image = build({"libc": ("ubsan",)})
    profile = image.compartment_of("libc").profile
    factor = image.machine.cost.ubsan_mem_factor
    assert profile.load_factor == pytest.approx(factor)
    assert profile.store_factor == pytest.approx(factor)


def test_factors_compose_multiplicatively():
    image = build({"libc": ("asan", "ubsan")})
    profile = image.compartment_of("libc").profile
    cost = image.machine.cost
    assert profile.load_factor == pytest.approx(
        cost.asan_mem_factor * cost.ubsan_mem_factor
    )


# --- stack protector / SafeStack -----------------------------------------------


def test_stackprotector_call_cost():
    image = build({"libc": ("stackprotector",)})
    profile = image.compartment_of("libc").profile
    assert profile.call_extra_ns == pytest.approx(
        image.machine.cost.stackprot_call_ns
    )


def test_safestack_call_cost_stacks_with_stackprotector():
    image = build({"libc": ("stackprotector", "safestack")})
    profile = image.compartment_of("libc").profile
    cost = image.machine.cost
    assert profile.call_extra_ns == pytest.approx(
        cost.stackprot_call_ns + cost.safestack_call_ns
    )


def test_canary_detects_smash():
    image = build({})
    machine = image.machine
    context = image.compartment_of("libc").make_context("frame")
    machine.cpu.push_context(context)
    try:
        frame = image.compartment_of("libc").alloc_region(64)
        place_canary(machine, frame + 32)
        verify_canary(machine, frame + 32)  # intact
        machine.store(frame + 32, b"\x00" * 8)  # smash
        with pytest.raises(SHViolation, match="stack smashing"):
            verify_canary(machine, frame + 32)
    finally:
        machine.cpu.pop_context()


# --- registry ------------------------------------------------------------------


def test_registry_contents():
    assert set(SH_TECHNIQUES) == {
        "asan",
        "kasan",
        "mte",
        "cfi",
        "dfi",
        "ubsan",
        "stackprotector",
        "safestack",
    }
    for name in SH_TECHNIQUES:
        assert make_hardener(name) is not None


def test_registry_unknown():
    from repro.machine.faults import GateError

    with pytest.raises(GateError):
        make_hardener("magic-shield")
