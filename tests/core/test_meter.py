"""Unit tests for the measurement utilities."""

import pytest

from repro.machine.machine import Machine
from repro.perf.meter import BenchResult, Meter, gbps, mbps, mreq_per_s


def test_unit_conversions():
    # 1000 bytes in 1000 ns = 1 GB/s = 8 Gb/s = 8000 Mb/s.
    assert mbps(1000, 1000) == pytest.approx(8000.0)
    assert gbps(1000, 1000) == pytest.approx(8.0)
    assert mreq_per_s(100, 100_000) == pytest.approx(1.0)


def test_zero_elapsed_is_zero_not_crash():
    assert mbps(100, 0) == 0.0
    assert mreq_per_s(100, 0) == 0.0


def test_bench_result_properties():
    result = BenchResult(
        label="test", payload_bytes=2000, requests=10, elapsed_ns=2000
    )
    assert result.throughput_mbps == pytest.approx(8000.0)
    assert result.throughput_gbps == pytest.approx(8.0)
    assert result.mreq_s == pytest.approx(5.0)  # 10 reqs in 2 µs
    assert result.ns_per_request == pytest.approx(200.0)
    assert "test" in str(result)


def test_empty_result():
    result = BenchResult(label="idle")
    assert result.throughput_mbps == 0.0
    assert result.ns_per_request == 0.0


def test_meter_measures_delta():
    machine = Machine()
    machine.cpu.charge(500)
    machine.cpu.bump("ops", 3)
    with Meter(machine, "window") as meter:
        machine.cpu.charge(1500)
        machine.cpu.bump("ops", 7)
        machine.cpu.bump("new_counter")
    assert meter.elapsed_ns == 1500
    delta = meter.stats_delta()
    assert delta["ops"] == 7
    assert delta["new_counter"] == 1
    result = meter.result(payload_bytes=1500)
    assert result.elapsed_ns == 1500
    assert result.stats["ops"] == 7


def test_meter_nested_counters_vanishing():
    machine = Machine()
    machine.cpu.bump("only_before", 5)
    with Meter(machine) as meter:
        pass
    assert meter.stats_delta()["only_before"] == 0


def test_percentile_nearest_rank():
    from repro.perf.meter import percentile

    values = [10.0, 20.0, 30.0, 40.0]
    # True nearest-rank: element at 1-based rank ceil(fraction * n).
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 0.25) == 10.0
    assert percentile(values, 0.5) == 20.0
    assert percentile(values, 0.51) == 30.0
    assert percentile(values, 0.75) == 30.0
    assert percentile(values, 0.99) == 40.0
    assert percentile(values, 1.0) == 40.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_meter_result_carries_latencies():
    machine = Machine()
    with Meter(machine, "lat") as meter:
        machine.cpu.charge(100)
    result = meter.result(requests=3, latencies_ns=[50.0, 10.0, 40.0])
    assert result.latencies_ns == [50.0, 10.0, 40.0]
    assert result.latency_percentile(0.5) == 40.0
    assert result.latency_percentile(1.0) == 50.0


def test_latency_fields():
    result = BenchResult(label="lat", latencies_ns=[100.0, 300.0, 200.0])
    assert result.mean_latency_ns == pytest.approx(200.0)
    assert result.latency_percentile(0.5) == 200.0
    assert result.latency_percentile(0.99) == 300.0
    empty = BenchResult(label="none")
    assert empty.mean_latency_ns == 0.0
    assert empty.latency_percentile(0.9) == 0.0
