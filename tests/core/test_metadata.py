"""Unit tests for the metadata model."""

import pytest

from repro.core.metadata import (
    UNSAFE_SPEC_TEMPLATE,
    LibrarySpec,
    Region,
    Requires,
    normalize_regions,
)


def test_normalize_all_absorbs():
    assert normalize_regions({Region.ALL, Region.OWN}) == frozenset({Region.ALL})
    assert normalize_regions({Region.OWN, Region.SHARED}) == frozenset(
        {Region.OWN, Region.SHARED}
    )


def test_spec_normalizes_on_construction():
    spec = LibrarySpec(
        name="x",
        reads=frozenset({Region.ALL, Region.OWN}),
        writes=frozenset({Region.OWN}),
    )
    assert spec.reads == frozenset({Region.ALL})
    assert spec.reads_everything
    assert not spec.writes_everything


def test_region_predicates():
    spec = UNSAFE_SPEC_TEMPLATE
    assert spec.writes_region(Region.OWN)
    assert spec.writes_region(Region.SHARED)
    assert spec.reads_region(Region.OWN)
    assert spec.calls_anything

    bounded = LibrarySpec(name="b")
    assert bounded.writes_region(Region.OWN)
    assert bounded.writes_region(Region.SHARED)
    assert not bounded.writes_everything


def test_calls_into():
    spec = LibrarySpec(
        name="caller",
        calls=frozenset({"sched::wake_one", "sched::yield_", "alloc::malloc"}),
    )
    assert spec.calls_into("sched") == frozenset({"wake_one", "yield_"})
    assert spec.calls_into("alloc") == frozenset({"malloc"})
    assert spec.calls_into("libc") == frozenset()
    assert LibrarySpec(name="wild", calls=None).calls_into("sched") is None


def test_requires_allowed_reads_includes_writes():
    requires = Requires(
        reads=frozenset({Region.OWN}), writes=frozenset({Region.SHARED})
    )
    assert requires.allowed_reads() == frozenset({Region.OWN, Region.SHARED})
    assert Requires().allowed_reads() is None
    assert Requires().empty
    assert not requires.empty


def test_with_requires():
    spec = LibrarySpec(name="x")
    requires = Requires(calls=frozenset({"api_fn"}))
    updated = spec.with_requires(requires)
    assert updated.requires is requires
    assert spec.requires is None  # original untouched (frozen)


def test_describe_roundtrips_through_parser():
    from repro.core.spec_parser import parse_spec

    spec = LibrarySpec(
        name="sched",
        reads=frozenset({Region.OWN, Region.SHARED}),
        writes=frozenset({Region.OWN, Region.SHARED}),
        calls=frozenset({"alloc::malloc", "alloc::free"}),
        api=("thread_add", "thread_rm"),
        requires=Requires(
            reads=frozenset({Region.OWN}),
            writes=frozenset({Region.SHARED}),
            calls=frozenset({"thread_add"}),
        ),
    )
    reparsed = parse_spec("sched", spec.describe())
    assert reparsed.reads == spec.reads
    assert reparsed.writes == spec.writes
    assert reparsed.calls == spec.calls
    assert set(reparsed.api) == set(spec.api)
    assert reparsed.requires == spec.requires


def test_describe_unsafe_component():
    text = UNSAFE_SPEC_TEMPLATE.describe()
    assert "Read(*)" in text
    assert "Write(*)" in text
    assert "[Call] *" in text
