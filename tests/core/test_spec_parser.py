"""Unit tests for the metadata DSL parser, including the paper's examples."""

import pytest

from repro.core.errors import SpecError
from repro.core.metadata import Region
from repro.core.spec_parser import parse_spec

#: The paper's verified-scheduler example, verbatim layout (§2).
SCHEDULER_EXAMPLE = """
[Memory access] Read(Own,Shared); Write(Own,Shared)
[Call] alloc::malloc, alloc::free
[API] thread_add (. . . ); thread_rm(. . . ); yield(. . . )
[Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), *. . .
"""

#: The paper's unsafe-C-component example (§2).
UNSAFE_EXAMPLE = """
[Memory access] Read(*); Write(*)
[Call] *
"""


def test_paper_scheduler_example():
    spec = parse_spec("sched", SCHEDULER_EXAMPLE)
    assert spec.reads == frozenset({Region.OWN, Region.SHARED})
    assert spec.writes == frozenset({Region.OWN, Region.SHARED})
    assert spec.calls == frozenset({"alloc::malloc", "alloc::free"})
    assert spec.api == ("thread_add", "thread_rm", "yield")
    assert spec.requires is not None
    assert spec.requires.reads == frozenset({Region.OWN})
    assert spec.requires.writes == frozenset({Region.SHARED})
    assert spec.requires.calls == frozenset({"thread_add"})


def test_paper_unsafe_example():
    spec = parse_spec("unsafe", UNSAFE_EXAMPLE)
    assert spec.reads_everything
    assert spec.writes_everything
    assert spec.calls_anything
    assert spec.requires is None


def test_absent_call_section_is_conservative():
    spec = parse_spec("x", "[Memory access] Read(Own); Write(Own)")
    assert spec.calls is None  # unknown = may call anything


def test_empty_call_section_means_no_calls():
    spec = parse_spec("x", "[Memory access] Read(Own); Write(Own)\n[Call]")
    assert spec.calls == frozenset()


def test_missing_memory_access_rejected():
    with pytest.raises(SpecError, match="Memory access"):
        parse_spec("x", "[Call] *")


def test_missing_read_or_write_rejected():
    with pytest.raises(SpecError):
        parse_spec("x", "[Memory access] Read(Own)")
    with pytest.raises(SpecError):
        parse_spec("x", "[Memory access] Write(Own)")


def test_duplicate_clauses_rejected():
    with pytest.raises(SpecError, match="duplicate"):
        parse_spec("x", "[Memory access] Read(Own); Read(Shared); Write(Own)")
    with pytest.raises(SpecError, match="duplicate section"):
        parse_spec(
            "x",
            "[Memory access] Read(Own); Write(Own)\n[Call] *\n[Call] *",
        )


def test_unknown_region_rejected():
    with pytest.raises(SpecError, match="unknown region"):
        parse_spec("x", "[Memory access] Read(Stack); Write(Own)")


def test_unqualified_call_target_rejected():
    with pytest.raises(SpecError, match="qualified"):
        parse_spec("x", "[Memory access] Read(Own); Write(Own)\n[Call] malloc")


def test_garbage_before_sections_rejected():
    with pytest.raises(SpecError):
        parse_spec("x", "hello\n[Memory access] Read(Own); Write(Own)")


def test_no_sections_rejected():
    with pytest.raises(SpecError, match="no metadata sections"):
        parse_spec("x", "nothing here")


def test_bad_api_entry_rejected():
    with pytest.raises(SpecError, match="invalid API"):
        parse_spec(
            "x",
            "[Memory access] Read(Own); Write(Own)\n[API] 123bad()",
        )


def test_unparsed_requires_rejected():
    with pytest.raises(SpecError, match="unparsed Requires"):
        parse_spec(
            "x",
            "[Memory access] Read(Own); Write(Own)\n[Requires] gibberish",
        )


def test_requires_unknown_region_rejected():
    with pytest.raises(SpecError, match="unknown region"):
        parse_spec(
            "x",
            "[Memory access] Read(Own); Write(Own)\n[Requires] *(Read,Heap)",
        )


def test_case_insensitive_sections_and_regions():
    spec = parse_spec(
        "x", "[memory access] read(own); WRITE(SHARED)\n[CALL] a::b"
    )
    assert spec.reads == frozenset({Region.OWN})
    assert spec.writes == frozenset({Region.SHARED})
    assert spec.calls == frozenset({"a::b"})


def test_all_real_library_specs_parse():
    """Every micro-library/app in the repo carries parseable metadata."""
    from repro.apps.iperf import IperfServerApp
    from repro.apps.rediserver import RedisServerApp
    from repro.libos.alloc.liballoc import AllocLibrary
    from repro.libos.libc.libc import LibCLibrary
    from repro.libos.mq.mq import MessageQueueLibrary
    from repro.libos.net.stack import NetstackLibrary
    from repro.libos.sched.coop import CoopScheduler
    from repro.libos.sched.verified import VerifiedScheduler

    for cls in (
        IperfServerApp,
        RedisServerApp,
        AllocLibrary,
        LibCLibrary,
        MessageQueueLibrary,
        NetstackLibrary,
        CoopScheduler,
        VerifiedScheduler,
    ):
        spec = parse_spec(cls.NAME, cls.SPEC)
        assert spec.name == cls.NAME
        # Exported API functions appear in the metadata where declared.
        if spec.api:
            assert all(name.isidentifier() for name in spec.api)
