"""Unit tests for build-configuration validation."""

import pytest

from repro.core.config import (
    ALLOC_POLICIES,
    BACKENDS,
    MAX_MPK_COMPARTMENTS,
    SCHEDULERS,
    BuildConfig,
)
from repro.core.errors import BuildError


def test_implicit_sched_and_alloc():
    config = BuildConfig(libraries=["libc"])
    names = config.all_libraries()
    assert "sched" in names and "alloc" in names and "libc" in names
    # Already-present implicits are not duplicated.
    config = BuildConfig(libraries=["sched", "libc"])
    assert config.all_libraries().count("sched") == 1


def test_valid_default_config():
    BuildConfig(libraries=["libc"]).validate()


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_backends_valid(backend):
    BuildConfig(libraries=["libc"], backend=backend).validate()


def test_unknown_backend_rejected():
    with pytest.raises(BuildError, match="backend"):
        BuildConfig(libraries=["libc"], backend="tee").validate()


def test_unknown_policy_rejected():
    with pytest.raises(BuildError, match="allocator policy"):
        BuildConfig(libraries=["libc"], allocator_policy="arena").validate()


def test_unknown_scheduler_rejected():
    with pytest.raises(BuildError, match="scheduler"):
        BuildConfig(libraries=["libc"], scheduler="fifo").validate()


def test_global_allocator_requires_no_hw_isolation():
    with pytest.raises(BuildError, match="global allocator"):
        BuildConfig(
            libraries=["libc"],
            backend="mpk-shared",
            allocator_policy="global",
        ).validate()
    BuildConfig(
        libraries=["libc"], backend="none", allocator_policy="global"
    ).validate()


def test_heap_sizes_validated():
    with pytest.raises(BuildError, match="heap"):
        BuildConfig(libraries=["libc"], heap_size=0).validate()
    with pytest.raises(BuildError, match="heap"):
        BuildConfig(libraries=["libc"], shared_heap_size=-1).validate()


def test_compartment_grouping_must_cover_everything():
    with pytest.raises(BuildError, match="misses"):
        BuildConfig(
            libraries=["libc"], compartments=[["libc"]]
        ).validate()  # sched/alloc missing


def test_compartment_grouping_no_duplicates():
    with pytest.raises(BuildError, match="two compartments"):
        BuildConfig(
            libraries=["libc"],
            compartments=[["libc", "sched"], ["libc", "alloc"]],
        ).validate()


def test_compartment_grouping_no_strangers():
    with pytest.raises(BuildError, match="unknown"):
        BuildConfig(
            libraries=["libc"],
            compartments=[["libc", "sched", "alloc", "ghost"]],
        ).validate()


def test_mpk_key_budget_enforced():
    groups = [[f"lib{i}"] for i in range(MAX_MPK_COMPARTMENTS + 1)]
    config = BuildConfig(
        libraries=[lib for group in groups for lib in group],
        compartments=groups + [["sched", "alloc"]],
        backend="mpk-shared",
    )
    with pytest.raises(BuildError, match="MPK supports"):
        config.validate()


def test_hardening_names_must_be_in_image():
    with pytest.raises(BuildError, match="hardening"):
        BuildConfig(
            libraries=["libc"], hardening={"netstack": ("asan",)}
        ).validate()


def test_config_dict_roundtrip():
    import json

    config = BuildConfig(
        libraries=["libc", "netstack"],
        compartments=[["netstack"], ["sched", "alloc", "libc"]],
        backend="mpk-shared",
        hardening={"netstack": ("asan", "cfi")},
        api_guards=True,
        name="roundtrip",
    )
    data = json.loads(json.dumps(config.to_dict()))
    rebuilt = BuildConfig.from_dict(data)
    assert rebuilt.libraries == config.libraries
    assert rebuilt.compartments == config.compartments
    assert rebuilt.hardening == {"netstack": ("asan", "cfi")}
    assert rebuilt.backend == "mpk-shared"
    assert rebuilt.api_guards is True
    rebuilt.validate()


def test_config_from_dict_rejects_unknown_keys():
    with pytest.raises(BuildError, match="unknown config keys"):
        BuildConfig.from_dict({"libraries": ["libc"], "turbo": True})


def test_config_dict_roundtrip_auto_compartments():
    config = BuildConfig(libraries=["libc"])
    rebuilt = BuildConfig.from_dict(config.to_dict())
    assert rebuilt.compartments is None


def test_constant_tables():
    assert "none" in BACKENDS and "vm-rpc" in BACKENDS
    assert set(ALLOC_POLICIES) == {"per-compartment", "global"}
    assert set(SCHEDULERS) == {"coop", "verified"}


def test_config_roundtrip_covers_every_field():
    import json

    config = BuildConfig(
        libraries=["libc", "netstack"],
        compartments=[["netstack"], ["sched", "alloc", "libc"]],
        backend="vm-rpc",
        api_guards=True,
        clear_registers=False,
        rx_batch=7,
        failure_policy="restart-with-backoff",
        name="full-roundtrip",
    )
    rebuilt = BuildConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    assert rebuilt.to_dict() == config.to_dict()
    assert rebuilt.rx_batch == 7
    assert rebuilt.api_guards is True
    assert rebuilt.clear_registers is False
    assert rebuilt.failure_policy == "restart-with-backoff"
    rebuilt.validate()


def test_unknown_failure_policy_rejected():
    with pytest.raises(BuildError, match="failure policy"):
        BuildConfig(
            libraries=["libc"], failure_policy="reboot-universe"
        ).validate()


def test_failure_policy_constants():
    from repro.core.config import FAILURE_POLICIES

    assert FAILURE_POLICIES == ("propagate", "isolate", "restart-with-backoff")
    for policy in FAILURE_POLICIES:
        BuildConfig(libraries=["libc"], failure_policy=policy).validate()
