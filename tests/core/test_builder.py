"""The builder: protection domains, heaps, wiring, hardening, boot."""

import pytest

from repro import BuildConfig, build_image
from repro.core.builder import auto_compartments, library_defs
from repro.core.config import SHARED_PKEY, STACK_PKEY
from repro.core.errors import BuildError
from repro.gates.funccall import DirectChannel, ProfileChannel
from repro.gates.mpk_shared import MPKSharedStackGate
from repro.gates.vm_rpc import VMRPCGate
from repro.machine.mpk import pkru_writable

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


def test_flat_image_layout():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=[sum(GROUPS, [])], backend="none")
    )
    assert len(image.compartments) == 1
    assert image.compartments[0].pkey is None
    layout = image.layout()
    assert "netstack" in layout and "flat" in layout


def test_mpk_image_assigns_keys_and_pkru():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="mpk-shared")
    )
    net_comp = image.compartment_of("netstack")
    rest_comp = image.compartment_of("libc")
    assert net_comp.pkey != rest_comp.pkey
    # Each compartment may write its own key and the shared key only.
    assert pkru_writable(net_comp.pkru_value, net_comp.pkey)
    assert pkru_writable(net_comp.pkru_value, SHARED_PKEY)
    assert not pkru_writable(net_comp.pkru_value, rest_comp.pkey)
    # Shared-stack backend: stacks live in the common stack domain.
    assert net_comp.stack_pkey == STACK_PKEY
    assert pkru_writable(net_comp.pkru_value, STACK_PKEY)


def test_mpk_switched_uses_private_stacks():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="mpk-switched")
    )
    net_comp = image.compartment_of("netstack")
    assert net_comp.stack_pkey is None  # stacks carry the comp's key
    assert not pkru_writable(net_comp.pkru_value, STACK_PKEY)


def test_vm_image_has_disjoint_domains():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="vm-rpc")
    )
    domains = {c.vm_domain.name for c in image.compartments}
    assert len(domains) == 2
    spaces = {c.address_space for c in image.compartments}
    assert len(spaces) == 2


def test_gate_kinds_match_backend():
    cases = {
        "none": ProfileChannel,
        "mpk-shared": MPKSharedStackGate,
        "vm-rpc": VMRPCGate,
    }
    for backend, gate_cls in cases.items():
        image = build_image(
            BuildConfig(libraries=LIBS, compartments=GROUPS, backend=backend)
        )
        stub = image.lib("iperf").stub("netstack")
        assert isinstance(stub._channel, gate_cls)
        # Same-compartment edges are always direct.
        stub_local = image.lib("iperf").stub("libc")
        assert isinstance(stub_local._channel, DirectChannel)


def test_libc_replicated_per_vm():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="vm-rpc")
    )
    netstack = image.lib("netstack")
    # The netstack's libc stub resolves to a replica in its own VM.
    channel = netstack.stub("libc")._channel
    assert isinstance(channel, DirectChannel)
    assert channel.callee_lib.compartment is netstack.compartment


def test_sched_is_vm_local():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="vm-rpc")
    )
    channel = image.lib("netstack").stub("sched")._channel
    assert isinstance(channel, DirectChannel)


def test_scheduler_domain_crossing_configured():
    by_backend = {}
    for backend in ("none", "mpk-shared", "mpk-switched", "vm-rpc"):
        image = build_image(
            BuildConfig(libraries=LIBS, compartments=GROUPS, backend=backend)
        )
        by_backend[backend] = image.scheduler.domain_crossing_ns
    assert by_backend["none"] == 0
    assert by_backend["vm-rpc"] == 0
    assert 0 < by_backend["mpk-shared"] < by_backend["mpk-switched"]


def test_global_allocator_is_shared_instance():
    image = build_image(
        BuildConfig(
            libraries=LIBS,
            compartments=GROUPS,
            backend="none",
            allocator_policy="global",
        )
    )
    allocators = {id(c.allocator) for c in image.compartments}
    assert len(allocators) == 1


def test_per_compartment_allocators_are_distinct():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="mpk-shared")
    )
    allocators = {id(c.allocator) for c in image.compartments}
    assert len(allocators) == len(image.compartments)


def test_unknown_library_rejected():
    with pytest.raises(BuildError, match="unknown library"):
        build_image(BuildConfig(libraries=["warpdrive"]))


def test_library_defs_parse_all():
    config = BuildConfig(libraries=LIBS)
    defs = library_defs(config)
    names = {d.name for d in defs}
    assert names == {"libc", "netstack", "iperf", "sched", "alloc"}


def test_auto_compartments_isolate_unsafe_libs():
    config = BuildConfig(libraries=LIBS)
    groups = auto_compartments(config)
    by_lib = {lib: i for i, group in enumerate(groups) for lib in group}
    # Unhardened netstack/libc (Write *) cannot share with sched/alloc.
    assert by_lib["netstack"] != by_lib["sched"]
    assert by_lib["libc"] != by_lib["sched"]
    assert by_lib["netstack"] != by_lib["alloc"]
    # netstack and libc are mutually tolerant (no Requires).
    assert by_lib["netstack"] == by_lib["libc"]


def test_auto_compartments_with_hardening_merge():
    config = BuildConfig(
        libraries=["libc"],
        hardening={"libc": ("asan", "cfi")},
    )
    groups = auto_compartments(config)
    # The hardened libc's narrowed spec co-locates with sched/alloc.
    assert len(groups) == 1


def test_auto_build_end_to_end():
    image = build_image(BuildConfig(libraries=LIBS, backend="mpk-shared"))
    assert image.has_lib("netstack")
    from repro.apps import run_iperf

    result = run_iperf(image, 1024, 1 << 17)
    assert result.throughput_mbps > 0


def test_double_boot_rejected():
    image = build_image(BuildConfig(libraries=["libc"]))
    with pytest.raises(BuildError, match="already booted"):
        image.boot()


def test_image_call_unknown_export():
    image = build_image(BuildConfig(libraries=["libc"]))
    with pytest.raises(BuildError, match="no export"):
        image.call("libc", "launch_missiles")
    with pytest.raises(BuildError, match="no library"):
        image.call("ghost", "anything")


def test_image_stats_and_clock():
    image = build_image(BuildConfig(libraries=["libc"]))
    stats = image.stats()
    assert "clock_ns" in stats
    assert image.clock_ns == stats["clock_ns"]
