"""Metadata inference from execution traces (paper §5 exploration)."""

import pytest

from repro.apps import run_iperf
from repro.core.inference import MetadataRecorder, profiling_image
from repro.core.metadata import Region


@pytest.fixture(scope="module")
def profiled():
    image, recorder = profiling_image(["libc", "netstack", "iperf"])
    run_iperf(image, 1024, 1 << 17)
    return image, recorder


def test_profiling_image_isolates_each_library():
    image, recorder = profiling_image(["libc"])
    # One substantive library per compartment (allocator replicas are
    # infrastructure and live everywhere).
    for compartment in image.compartments:
        substantive = [
            n for n in compartment.library_names() if n != "alloc"
        ]
        assert len(substantive) <= 1


def test_observed_memory_regions(profiled):
    _, recorder = profiled
    libc = recorder.observed("libc")
    # memcpy moves shared-heap data: shared reads and writes observed.
    assert Region.SHARED in libc.reads
    assert Region.SHARED in libc.writes
    netstack = recorder.observed("netstack")
    # header parses + TCB updates: own memory; mbufs: shared.
    assert Region.OWN in netstack.reads
    assert Region.OWN in netstack.writes
    assert netstack.access_count > 0


def test_no_foreign_accesses_in_clean_run(profiled):
    """A healthy workload touches only Own+Shared — never ALL."""
    _, recorder = profiled
    for name in ("libc", "netstack", "iperf"):
        observation = recorder.observed(name)
        assert Region.ALL not in observation.reads
        assert Region.ALL not in observation.writes


def test_observed_call_graph(profiled):
    _, recorder = profiled
    netstack = recorder.observed("netstack")
    assert "libc::memcpy" in netstack.calls
    assert "libc::sem_v" in netstack.calls
    iperf = recorder.observed("iperf")
    assert "netstack::recv" in iperf.calls
    assert "netstack::listen" in iperf.calls
    # Entry points observed on the callee side.
    assert "recv" in recorder.observed("netstack").entry_points


def test_inferred_spec_shape(profiled):
    _, recorder = profiled
    spec = recorder.observed("netstack").spec()
    assert spec.name == "netstack"
    assert not spec.calls_anything  # calls are concrete
    assert spec.calls_into("libc")
    facts = recorder.observed("netstack").behavior_facts()
    assert "libc::memcpy" in facts["calls"]
    assert "Own" in facts["writes"]


def test_validation_flags_overapproximation(profiled):
    _, recorder = profiled
    findings = recorder.validate_declared("netstack")
    severities = {finding.severity for finding in findings}
    # The netstack declares Write(*) / Call * conservatively; the trace
    # shows bounded behaviour -> review notes, no errors.
    assert "error" not in severities
    assert any("Write(*)" in str(f) for f in findings)
    assert any("Call *" in str(f) for f in findings)


def test_validation_catches_undeclared_behavior():
    """A library whose declared metadata is narrower than reality."""
    image, recorder = profiling_image(["libc", "mq"])
    # mq declares calls only into libc; patch its declared SPEC to omit
    # sem_v and confirm the validator notices the observed call.
    mq = image.lib("mq")
    mq.SPEC = """
    [Memory access] Read(Own); Write(Own)
    [Call] libc::sem_new
    """
    qid = image.call("mq", "q_new", 2)
    libc = image.lib("libc")

    def body():
        stub = libc.stub("mq")
        yield from stub.call_gen("q_push", qid, 0x1000, 4)
        yield from stub.call_gen("q_pop", qid)

    image.spawn("worker", body, libc)
    image.run(max_switches=100)
    findings = recorder.validate_declared("mq")
    errors = [f for f in findings if f.severity == "error"]
    assert any("libc::sem_v" in f.detail for f in errors)
    assert any("libc::sem_p" in f.detail for f in errors)


def test_observed_unknown_library_is_empty(profiled):
    _, recorder = profiled
    ghost = recorder.observed("ghost")
    assert ghost.access_count == 0
    assert ghost.spec().reads == frozenset({Region.OWN})


def test_attach_is_idempotent(profiled):
    image, recorder = profiled
    monitors_before = len(image.compartments[0].profile.monitors)
    recorder.attach()
    assert len(image.compartments[0].profile.monitors) == monitors_before


def test_inferred_facts_feed_the_explorer(profiled):
    """End-to-end §5 workflow: trace → facts → deployment enumeration."""
    from repro.core.hardening import LibraryDef, enumerate_deployments
    from repro.core.spec_parser import parse_spec

    image, recorder = profiled
    libdefs = []
    for name in ("libc", "netstack", "iperf"):
        instance = image.lib(name)
        libdefs.append(
            LibraryDef(
                name=name,
                spec=parse_spec(name, instance.SPEC),
                true_behavior=recorder.observed(name).behavior_facts(),
            )
        )
    deployments = enumerate_deployments(libdefs)
    assert len(deployments) >= 2
    # With traced facts, a fully-hardened combination exists in which
    # everything may share one compartment (no Requires among these).
    assert min(d.num_compartments for d in deployments) == 1
