"""Persistent perf cache + parallel measurement for the explorer."""

import json

import pytest

from repro.core.autobench import measure_many, simulated_perf_fn
from repro.core.builder import library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import Explorer
from repro.core.hardening import Deployment
from repro.core.metadata import LibrarySpec
from repro.core.perfcache import PerfCache, candidate_key
from repro.obs import exploration_metrics

LIBS = ["libc", "netstack", "iperf"]


def _deployment(coloring, choices=None):
    names = list(coloring)
    return Deployment(
        choices=choices or {name: () for name in names},
        specs={name: LibrarySpec(name=name) for name in names},
        coloring=coloring,
    )


def test_candidate_key_color_permutation_invariant():
    one = _deployment({"a": 0, "b": 1, "c": 0})
    two = _deployment({"a": 1, "b": 0, "c": 1})
    assert candidate_key(one, "iperf", "mpk-shared") == candidate_key(
        two, "iperf", "mpk-shared"
    )


def test_candidate_key_varies_with_context():
    d = _deployment({"a": 0, "b": 1})
    base = candidate_key(d, "iperf", "mpk-shared")
    assert candidate_key(d, "redis", "mpk-shared") != base
    assert candidate_key(d, "iperf", "vm-rpc") != base
    assert candidate_key(d, "iperf", "mpk-shared", scale=2) != base
    assert (
        candidate_key(d, "iperf", "mpk-shared", config_overrides={"heap": 1})
        != base
    )
    # Keys are stable JSON strings (usable across processes).
    assert json.loads(base)["workload"] == "iperf"


def test_perfcache_roundtrip(tmp_path):
    path = tmp_path / "cache.json"
    cache = PerfCache(path)
    assert len(cache) == 0
    assert cache.get("k") is None
    cache.put("k", 42.5)
    assert cache.get("k") == 42.5
    reloaded = PerfCache(path)
    assert reloaded.get("k") == 42.5
    assert len(reloaded) == 1


def test_perfcache_ignores_corrupt_and_mismatched_files(tmp_path):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    assert len(PerfCache(corrupt)) == 0
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"version": -1, "entries": {"k": 1.0}}))
    assert len(PerfCache(stale)) == 0


def test_perfcache_parallel_puts_all_persist(tmp_path):
    """Write-through saves must not drop concurrent entries (the
    persisted file is a snapshot; unsynchronised snapshots race)."""
    from concurrent.futures import ThreadPoolExecutor

    path = tmp_path / "cache.json"
    cache = PerfCache(path)
    keys = [f"k{i}" for i in range(64)]
    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(lambda k: cache.put(k, 1.0), keys))
    reloaded = PerfCache(path)
    assert len(reloaded) == len(keys)


def test_perfcache_none_path_is_process_local():
    cache = PerfCache(None)
    cache.put("k", 1.0)
    assert cache.get("k") == 1.0


def test_warm_cache_skips_all_builds(tmp_path):
    """Acceptance: a second simulation-backed exploration with a warm
    persistent cache performs zero image builds (obs counters)."""
    cache_path = tmp_path / "perf.json"
    defs = library_defs(BuildConfig(libraries=LIBS))

    cold = Explorer(defs)
    cold_perf = simulated_perf_fn(LIBS, workload="iperf", cache_path=cache_path)
    cold_best = cold.best_performance_meeting(["no-wild-writes"], perf_fn=cold_perf)
    assert len(cold_perf.perf_cache) > 0

    metrics = exploration_metrics()
    builds_before = metrics.counter("explore.builds")
    hits_before = metrics.counter("explore.perfcache.hits")

    warm = Explorer(defs)
    warm_perf = simulated_perf_fn(LIBS, workload="iperf", cache_path=cache_path)
    warm_best = warm.best_performance_meeting(["no-wild-writes"], perf_fn=warm_perf)

    assert metrics.counter("explore.builds") == builds_before
    assert metrics.counter("explore.perfcache.hits") > hits_before
    assert warm_best.key() == cold_best.key()
    # Cache hits skip the build entirely, so no snapshots either.
    assert warm_perf.snapshots == {}


def test_measure_many_matches_sequential():
    defs = library_defs(BuildConfig(libraries=LIBS))
    explorer = Explorer(defs)
    deployments = explorer.deployments

    sequential = simulated_perf_fn(LIBS, workload="iperf")
    expected = [sequential(d) for d in deployments]

    parallel = simulated_perf_fn(LIBS, workload="iperf")
    got = parallel.measure_many(deployments, workers=4)
    assert got == expected
    # Duplicate inputs measure once but report per-input costs.
    doubled = parallel.measure_many(deployments * 2, workers=4)
    assert doubled == expected * 2


def test_measure_many_dedupes_builds():
    defs = library_defs(BuildConfig(libraries=LIBS))
    explorer = Explorer(defs)
    deployment = explorer.deployments[0]
    calls = []

    def perf(d):
        calls.append(d.key())
        return 1.0

    costs = measure_many(perf, [deployment, deployment, deployment], workers=3)
    assert costs == [1.0, 1.0, 1.0]
    assert len(calls) == 1


def test_memo_key_is_partition_based():
    """Colorings differing only by color labels hit the in-process memo."""
    defs = library_defs(BuildConfig(libraries=LIBS))
    explorer = Explorer(defs)
    deployment = explorer.deployments[0]
    permuted_coloring = {
        name: (color + 1) % (deployment.num_compartments or 1)
        for name, color in deployment.coloring.items()
    }
    permuted = Deployment(
        choices=deployment.choices,
        specs=deployment.specs,
        coloring=permuted_coloring,
    )
    assert permuted.key() == deployment.key()

    perf = simulated_perf_fn(LIBS, workload="iperf")
    metrics = exploration_metrics()
    first = perf(deployment)
    builds_before = metrics.counter("explore.builds")
    second = perf(permuted)
    assert second == first
    assert metrics.counter("explore.builds") == builds_before
    assert len(perf.snapshots) == 1
