"""Property-based tests for core invariants (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compatibility import can_share, conflict_graph, violations
from repro.core.coloring import minimum_coloring, verify_coloring
from repro.core.hardening import (
    LibraryDef,
    enumerate_deployments,
    transform_spec,
)
from repro.core.metadata import LibrarySpec, Region, Requires

regions = st.sets(
    st.sampled_from([Region.OWN, Region.SHARED, Region.ALL]), min_size=1
)
fn_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])
call_targets = st.sets(
    st.tuples(st.sampled_from(["lib0", "lib1", "lib2"]), fn_names).map(
        lambda pair: f"{pair[0]}::{pair[1]}"
    ),
    max_size=4,
)
maybe_calls = st.one_of(st.none(), call_targets)
maybe_requires = st.one_of(
    st.none(),
    st.builds(
        Requires,
        reads=st.one_of(st.none(), regions.map(frozenset)),
        writes=st.one_of(st.none(), regions.map(frozenset)),
        calls=st.one_of(st.none(), st.sets(fn_names).map(frozenset)),
    ),
)


def spec_strategy(name: str):
    return st.builds(
        LibrarySpec,
        name=st.just(name),
        reads=regions.map(frozenset),
        writes=regions.map(frozenset),
        calls=maybe_calls,
        requires=maybe_requires,
    )


@settings(max_examples=100, deadline=None)
@given(a=spec_strategy("lib0"), b=spec_strategy("lib1"))
def test_can_share_is_symmetric(a, b):
    assert can_share(a, b) == can_share(b, a)


@settings(max_examples=100, deadline=None)
@given(a=spec_strategy("lib0"), b=spec_strategy("lib1"))
def test_no_requires_means_no_violations(a, b):
    if a.requires is None or a.requires.empty:
        assert violations(b, a) == []


@settings(max_examples=100, deadline=None)
@given(spec=spec_strategy("lib0"))
def test_spec_describe_reparses_equivalently(spec):
    """describe() → parse_spec() is lossless for the behaviour fields."""
    from repro.core.spec_parser import parse_spec

    reparsed = parse_spec(spec.name, spec.describe())
    assert reparsed.reads == spec.reads
    assert reparsed.writes == spec.writes
    assert reparsed.calls == spec.calls
    expected_requires = spec.requires
    if expected_requires is not None and expected_requires.empty:
        expected_requires = None
    if expected_requires is None:
        assert reparsed.requires is None
    else:
        assert reparsed.requires.reads == expected_requires.reads
        assert reparsed.requires.writes == expected_requires.writes
        if expected_requires.calls == frozenset():
            # The DSL has no syntax for an empty allowance list; it
            # renders as absent (documented in LibrarySpec.describe).
            assert reparsed.requires.calls is None
        else:
            assert reparsed.requires.calls == expected_requires.calls


@settings(max_examples=60, deadline=None)
@given(
    specs=st.tuples(
        spec_strategy("lib0"), spec_strategy("lib1"), spec_strategy("lib2")
    )
)
def test_conflict_graph_colorings_always_valid(specs):
    nodes, edges = conflict_graph(list(specs))
    coloring = minimum_coloring(nodes, edges)
    assert verify_coloring(edges, coloring)
    # Every same-color pair really is compatible.
    by_name = {spec.name: spec for spec in specs}
    for a, b in itertools.combinations(nodes, 2):
        if coloring[a] == coloring[b]:
            assert can_share(by_name[a], by_name[b])


@settings(max_examples=60, deadline=None)
@given(
    writes=regions,
    reads=regions,
    requires=maybe_requires,
)
def test_hardening_never_widens_behavior(writes, reads, requires):
    """SH transformations only narrow a spec: a hardened variant is
    compatible with everything the unhardened one was compatible with."""
    libdef = LibraryDef(
        name="lib0",
        spec=LibrarySpec(
            name="lib0",
            reads=frozenset(reads),
            writes=frozenset(writes),
            calls=None,
            requires=requires,
        ),
        true_behavior={
            "writes": ["Own", "Shared"],
            "reads": ["Own", "Shared"],
            "calls": ["lib1::alpha"],
        },
    )
    hardened = transform_spec(libdef, ("asan", "cfi"))
    # Narrowing: region sets shrink or stay equal.
    assert not (hardened.writes_everything and not libdef.spec.writes_everything)
    assert not (hardened.reads_everything and not libdef.spec.reads_everything)
    if libdef.spec.calls is not None:
        assert hardened.calls == libdef.spec.calls
    # Against an arbitrary strict owner, hardened never has MORE
    # violations than unhardened.
    owner = LibrarySpec(
        name="owner",
        requires=Requires(
            reads=frozenset({Region.OWN}),
            writes=frozenset({Region.SHARED}),
            calls=frozenset(),
        ),
    )
    assert len(violations(hardened, owner)) <= len(
        violations(libdef.spec, owner)
    )


@settings(max_examples=40, deadline=None)
@given(
    unsafe_count=st.integers(min_value=0, max_value=3),
)
def test_fully_hardened_deployment_minimizes_compartments(unsafe_count):
    """The all-hardened combination never needs more compartments than
    any other combination (narrower specs => fewer conflicts)."""
    libdefs = [
        LibraryDef(
            name=f"unsafe{i}",
            spec=LibrarySpec(
                name=f"unsafe{i}",
                reads=frozenset({Region.ALL}),
                writes=frozenset({Region.ALL}),
                calls=None,
            ),
            true_behavior={
                "writes": ["Own", "Shared"],
                "reads": ["Own", "Shared"],
                "calls": [],
            },
        )
        for i in range(unsafe_count)
    ]
    libdefs.append(
        LibraryDef(
            name="guard",
            spec=LibrarySpec(
                name="guard",
                requires=Requires(
                    reads=frozenset({Region.OWN}),
                    writes=frozenset({Region.SHARED}),
                    calls=frozenset({"enter"}),
                ),
            ),
        )
    )
    deployments = enumerate_deployments(libdefs)
    fully = min(
        deployments, key=lambda d: sum(len(t) for t in d.choices.values())
    )
    most_hardened = max(
        deployments, key=lambda d: sum(len(t) for t in d.choices.values())
    )
    assert most_hardened.num_compartments <= fully.num_compartments
