"""The flexos-report CLI."""

import json

import pytest

from repro.core.config import BuildConfig
from repro.tools.report import config_from_args, main as report_main, report


def test_report_iperf_sections():
    config = BuildConfig(
        libraries=["libc", "netstack", "iperf"],
        compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
        backend="mpk-shared",
    )
    text = report(config, "iperf")
    assert "== Layout ==" in text
    assert "Mb/s simulated" in text
    assert "== Gate crossings" in text
    assert "mpk-shared" in text
    assert "== Simulated time by compartment ==" in text
    assert "== Memory ==" in text


def test_report_redis_latencies():
    config = BuildConfig(
        libraries=["libc", "netstack", "redis"],
        backend="none",
    )
    text = report(config, "redis")
    assert "Mreq/s" in text and "p99" in text


def test_report_unknown_workload():
    config = BuildConfig(libraries=["libc"])
    with pytest.raises(ValueError):
        report(config, "quake")


def test_cli_with_flags(capsys):
    assert (
        report_main(
            [
                "--libs",
                "libc,netstack,iperf",
                "--backend",
                "cheri",
                "--workload",
                "iperf",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "cheri" in out


def test_cli_with_json_config(tmp_path, capsys):
    config = BuildConfig(
        libraries=["libc", "netstack", "iperf"],
        compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
        backend="vm-rpc",
    )
    path = tmp_path / "build.json"
    path.write_text(json.dumps(config.to_dict()))
    assert report_main(["--config", str(path), "--workload", "iperf"]) == 0
    out = capsys.readouterr().out
    assert "vm-rpc" in out or "vm=" in out


def test_cli_json_output(capsys):
    assert (
        report_main(
            ["--libs", "libc,netstack,iperf", "--workload", "iperf", "--json"]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert data["workload"]["name"] == "iperf"
    assert data["workload"]["throughput_mbps"] > 0
    # The caller→callee crossing matrix comes straight from the
    # metrics registry.
    matrix = data["crossing_matrix"]
    assert matrix["iperf"]["netstack"] > 0
    assert data["metrics"]["counters"]["gate_crossings"] > 0
    assert data["time_by_compartment_ns"]


def test_cli_trace_output(tmp_path, capsys):
    from repro.obs import validate_chrome_trace

    trace_path = tmp_path / "trace.json"
    assert (
        report_main(
            [
                "--libs",
                "libc,netstack,iperf",
                "--workload",
                "iperf",
                "--trace",
                str(trace_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"trace written to {trace_path}" in out
    data = json.loads(trace_path.read_text())
    assert validate_chrome_trace(data) == []
    assert any(e.get("cat") == "gate" for e in data["traceEvents"])


def test_config_from_harden_flags():
    class Args:
        config = None
        libs = "libc,netstack,iperf"
        backend = "none"
        harden = ["netstack=asan+cfi"]

    config = config_from_args(Args())
    assert config.hardening == {"netstack": ("asan", "cfi")}
