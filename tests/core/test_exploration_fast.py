"""The exploration fast path: matrix, coloring memo, lazy enumeration.

Property-style tests (seeded random instances) pinning the fast
pipeline to its reference implementations:

- the variant compatibility matrix reproduces ``conflict_graph``;
- lazy (and pruned) enumeration yields the same deployments as the
  eager per-combination path;
- the coloring memo is bit-identical to calling the solver;
- ``exact_coloring`` matches DSATUR's color count whenever DSATUR is
  provably optimal (count == clique lower bound);
- ``Deployment.key()`` is color-permutation invariant.
"""

import itertools
import random

import pytest

from repro.core.coloring import (
    ColoringCache,
    dsatur_coloring,
    exact_coloring,
    minimum_coloring,
    verify_coloring,
    _max_clique_lower_bound,
    _adjacency,
)
from repro.core.compatibility import CompatibilityMatrix, conflict_graph
from repro.core.explorer import Explorer, estimate_crossing_cost
from repro.core.hardening import (
    Deployment,
    LibraryDef,
    enumerate_deployments,
    iter_deployments,
    transform_spec,
    sh_variants,
)
from repro.core.metadata import LibrarySpec, Region, Requires


def random_spec(rng: random.Random, name: str) -> LibrarySpec:
    """A random but plausible library spec."""
    wild = rng.random() < 0.5
    requires = None
    if rng.random() < 0.5:
        requires = Requires(
            writes=(
                frozenset({Region.SHARED})
                if rng.random() < 0.5
                else frozenset({Region.OWN, Region.SHARED})
            ),
            reads=(
                frozenset({Region.OWN, Region.SHARED})
                if rng.random() < 0.3
                else None
            ),
            calls=frozenset({"init", "step"}) if rng.random() < 0.3 else None,
        )
    return LibrarySpec(
        name=name,
        reads=frozenset({Region.ALL})
        if wild
        else frozenset({Region.OWN, Region.SHARED}),
        writes=frozenset({Region.ALL})
        if wild
        else frozenset({Region.OWN, Region.SHARED}),
        calls=None if rng.random() < 0.4 else frozenset({f"{name}x::init"}),
        requires=requires,
    )


def random_libdef(rng: random.Random, name: str) -> LibraryDef:
    spec = random_spec(rng, name)
    behavior = {}
    if rng.random() < 0.8:
        behavior["writes"] = ["Own", "Shared"]
        behavior["reads"] = ["Own", "Shared"]
    if rng.random() < 0.5:
        behavior["calls"] = [f"{name}x::init"]
    return LibraryDef(name=name, spec=spec, true_behavior=behavior)


@pytest.mark.parametrize("seed", range(8))
def test_matrix_matches_conflict_graph(seed):
    """Every selection's edges from the matrix == a fresh conflict_graph."""
    rng = random.Random(seed)
    libdefs = [random_libdef(rng, f"lib{i}") for i in range(4)]
    variant_specs = {
        libdef.name: [
            transform_spec(libdef, techs)
            for techs in sh_variants(libdef, alternatives=True)
        ]
        for libdef in libdefs
    }
    matrix = CompatibilityMatrix(variant_specs)
    ranges = [range(len(specs)) for specs in variant_specs.values()]
    for indices in itertools.product(*ranges):
        selection = dict(zip(variant_specs, indices))
        selected = [
            variant_specs[name][index] for name, index in selection.items()
        ]
        nodes, edges = conflict_graph(selected)
        matrix_nodes, matrix_edges = matrix.conflict_graph(selection)
        assert matrix_nodes == nodes
        assert matrix_edges == edges
        for (a, i), (b, j) in itertools.combinations(selection.items(), 2):
            assert matrix.conflicts(a, i, b, j) == (
                frozenset({a, b}) in edges
            )


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("alternatives", [False, True])
def test_lazy_enumeration_matches_eager(seed, alternatives):
    rng = random.Random(seed)
    libdefs = [random_libdef(rng, f"lib{i}") for i in range(4)]
    eager = enumerate_deployments(libdefs, alternatives, eager=True)
    fast = list(iter_deployments(libdefs, alternatives))
    assert fast == eager  # same deployments, same order, bit-identical
    assert [d.key() for d in fast] == [d.key() for d in eager]


@pytest.mark.parametrize("seed", range(6))
def test_pruned_enumeration_preserves_cheapest(seed):
    """Pruning drops only cost-dominated candidates: the same deployment
    set by key survives for every spec signature's cheapest member, and
    the analytic minimum is unchanged."""
    rng = random.Random(seed)
    libdefs = [random_libdef(rng, f"lib{i}") for i in range(4)]
    full = list(iter_deployments(libdefs, alternatives=True))
    pruned = list(iter_deployments(libdefs, alternatives=True, prune_dominated=True))
    full_keys = {d.key() for d in full}
    assert {d.key() for d in pruned} <= full_keys
    assert min(
        estimate_crossing_cost(d, libdefs) for d in pruned
    ) == min(estimate_crossing_cost(d, libdefs) for d in full)


def test_isolate_edges_preserved_on_fast_path():
    rng = random.Random(42)
    libdefs = [random_libdef(rng, f"lib{i}") for i in range(4)]
    eager = enumerate_deployments(libdefs, isolate=("lib2",), eager=True)
    fast = enumerate_deployments(libdefs, isolate=("lib2",))
    assert fast == eager
    for deployment in fast:
        alone = [
            name
            for name, color in deployment.coloring.items()
            if color == deployment.coloring["lib2"]
        ]
        assert alone == ["lib2"]


def random_graph(rng: random.Random, size: int, density: float):
    nodes = [f"n{i}" for i in range(size)]
    edges = {
        frozenset({a, b})
        for a, b in itertools.combinations(nodes, 2)
        if rng.random() < density
    }
    return nodes, edges


@pytest.mark.parametrize("seed", range(12))
def test_exact_matches_dsatur_when_dsatur_optimal(seed):
    rng = random.Random(seed)
    nodes, edges = random_graph(rng, rng.randint(4, 9), rng.random() * 0.7)
    dsatur = dsatur_coloring(nodes, edges)
    exact = exact_coloring(nodes, edges)
    assert verify_coloring(edges, dsatur)
    assert verify_coloring(edges, exact)
    dsatur_count = max(dsatur.values()) + 1
    exact_count = max(exact.values()) + 1
    assert exact_count <= dsatur_count
    lower = _max_clique_lower_bound(_adjacency(nodes, edges))
    if dsatur_count == lower:  # DSATUR provably optimal here
        assert exact_count == dsatur_count


@pytest.mark.parametrize("seed", range(8))
def test_coloring_cache_bit_identical_and_hits(seed):
    rng = random.Random(seed)
    nodes, edges = random_graph(rng, 7, 0.4)
    cache = ColoringCache()
    first = cache.minimum_coloring(nodes, edges)
    direct = minimum_coloring(nodes, edges)
    assert first == direct
    assert cache.misses == 1 and cache.hits == 0
    second = cache.minimum_coloring(nodes, edges)
    assert second == first
    assert cache.hits == 1
    # Cached results are copies: mutating one must not poison the memo.
    second["poison"] = 99
    assert "poison" not in cache.minimum_coloring(nodes, edges)


def _deployment(coloring: dict[str, int]) -> Deployment:
    specs = {
        name: LibrarySpec(name=name) for name in coloring
    }
    choices = {name: () for name in coloring}
    return Deployment(choices=choices, specs=specs, coloring=coloring)


def test_deployment_key_is_color_permutation_invariant():
    one = _deployment({"a": 0, "b": 1, "c": 0})
    # Same partition {a,c} | {b}, colors swapped.
    two = _deployment({"a": 1, "b": 0, "c": 1})
    other = _deployment({"a": 0, "b": 1, "c": 1})
    assert one.key() == two.key()
    assert hash(one.key()) == hash(two.key())
    assert one.key() != other.key()
    assert one.partition() == frozenset(
        {frozenset({"a", "c"}), frozenset({"b"})}
    )


def test_deployment_key_reflects_choices():
    base = {"a": 0, "b": 1}
    plain = Deployment(
        choices={"a": (), "b": ()},
        specs={n: LibrarySpec(name=n) for n in base},
        coloring=base,
    )
    hardened = Deployment(
        choices={"a": ("asan",), "b": ()},
        specs={n: LibrarySpec(name=n) for n in base},
        coloring=base,
    )
    assert plain.key() != hardened.key()
    assert plain.key() == plain.key()


def test_estimator_backend_weights_rank_consistently():
    """A multi-compartment deployment costs more under dearer backends."""
    specs = {n: LibrarySpec(name=n) for n in ("a", "b")}
    libdefs = [
        LibraryDef(name="a", spec=specs["a"], true_behavior={"calls": ["b::f"]}),
        LibraryDef(name="b", spec=specs["b"], true_behavior={"calls": []}),
    ]
    split = Deployment(
        choices={"a": (), "b": ()},
        specs={
            "a": LibrarySpec(name="a", calls=frozenset({"b::f"})),
            "b": LibrarySpec(name="b", calls=frozenset()),
        },
        coloring={"a": 0, "b": 1},
    )
    default = estimate_crossing_cost(split, libdefs)
    mpk = estimate_crossing_cost(split, libdefs, backend="mpk-shared")
    vm = estimate_crossing_cost(split, libdefs, backend="vm-rpc")
    cheri = estimate_crossing_cost(split, libdefs, backend="cheri")
    assert default == mpk  # mpk-shared is the normalisation point
    assert vm > mpk > cheri
    with pytest.raises(Exception):
        estimate_crossing_cost(split, libdefs, backend="quantum")


def test_explorer_streams_lazily():
    """Strategy queries must not force the whole variant product."""
    rng = random.Random(7)
    libdefs = [random_libdef(rng, f"lib{i}") for i in range(6)]
    explorer = Explorer(libdefs, alternatives=True)
    # stop_at=0 with a free perf fn returns on the first compliant
    # candidate; the product must not be exhausted afterwards.
    found = explorer.best_performance_meeting(
        [], perf_fn=lambda d: 0.0, stop_at=0.0
    )
    assert found is not None
    stats = explorer.exploration_stats()
    total = 1
    for libdef in libdefs:
        total *= len(sh_variants(libdef, alternatives=True))
    assert stats["materialized"] < total
    assert not stats["exhausted"]
    # Full materialization still works afterwards and is stable.
    assert len(explorer.deployments) == total
    assert explorer.exploration_stats()["exhausted"]


def test_explorer_strategies_match_eager_reference():
    rng = random.Random(11)
    libdefs = [random_libdef(rng, f"lib{i}") for i in range(4)]
    eager = enumerate_deployments(libdefs, alternatives=True, eager=True)
    explorer = Explorer(libdefs, alternatives=True)

    from repro.core.explorer import requirement_satisfied, security_score

    perf = lambda d: estimate_crossing_cost(d, libdefs)  # noqa: E731
    within = [d for d in eager if perf(d) <= 1e9]
    expected_security = max(within, key=security_score)
    got_security = explorer.max_security_within_budget(budget=1e9)
    assert got_security.key() == expected_security.key()

    compliant = [
        d for d in eager if requirement_satisfied(d, "no-wild-writes", libdefs)
    ]
    if compliant:
        expected_best = min(compliant, key=perf)
        got_best = explorer.best_performance_meeting(["no-wild-writes"])
        assert got_best.key() == expected_best.key()
