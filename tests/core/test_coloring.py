"""Unit + property tests for compartment graph coloring."""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import (
    color_classes,
    dsatur_coloring,
    exact_coloring,
    minimum_coloring,
    verify_coloring,
)


def path(n):
    nodes = [f"v{i}" for i in range(n)]
    edges = {frozenset({nodes[i], nodes[i + 1]}) for i in range(n - 1)}
    return nodes, edges


def complete(n):
    nodes = [f"v{i}" for i in range(n)]
    edges = {frozenset(pair) for pair in itertools.combinations(nodes, 2)}
    return nodes, edges


def test_empty_graph():
    assert exact_coloring([], []) == {}
    assert dsatur_coloring([], []) == {}


def test_single_node():
    coloring = minimum_coloring(["only"], [])
    assert coloring == {"only": 0}


def test_no_edges_one_color():
    nodes = [f"v{i}" for i in range(6)]
    coloring = minimum_coloring(nodes, [])
    assert set(coloring.values()) == {0}


def test_path_is_two_colorable():
    nodes, edges = path(7)
    coloring = exact_coloring(nodes, edges)
    assert verify_coloring(edges, coloring)
    assert max(coloring.values()) + 1 == 2


def test_complete_graph_needs_n_colors():
    """Paper: 'in the worst case where all libraries have conflicts,
    each library will be instantiated in its own compartment.'"""
    nodes, edges = complete(6)
    coloring = exact_coloring(nodes, edges)
    assert verify_coloring(edges, coloring)
    assert max(coloring.values()) + 1 == 6


def test_odd_cycle_needs_three():
    nodes = [f"v{i}" for i in range(5)]
    edges = {frozenset({nodes[i], nodes[(i + 1) % 5]}) for i in range(5)}
    coloring = exact_coloring(nodes, edges)
    assert verify_coloring(edges, coloring)
    assert max(coloring.values()) + 1 == 3


def test_verify_coloring_detects_conflict():
    nodes, edges = path(3)
    bad = {node: 0 for node in nodes}
    assert not verify_coloring(edges, bad)


def test_bad_edges_rejected():
    with pytest.raises(ValueError):
        dsatur_coloring(["a"], [frozenset({"a", "ghost"})])
    with pytest.raises(ValueError):
        dsatur_coloring(["a", "b"], [frozenset({"a"})])


def test_color_classes_grouping():
    coloring = {"a": 0, "b": 1, "c": 0, "d": 2}
    assert color_classes(coloring) == [["a", "c"], ["b"], ["d"]]


def test_dsatur_deterministic():
    nodes, edges = path(9)
    assert dsatur_coloring(nodes, edges) == dsatur_coloring(nodes, edges)


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(n)]
    edges = {
        frozenset(pair)
        for pair in itertools.combinations(nodes, 2)
        if rng.random() < p
    }
    return nodes, edges


@pytest.mark.parametrize("seed", range(8))
def test_exact_never_worse_than_dsatur(seed):
    nodes, edges = _random_graph(11, 0.4, seed)
    greedy = dsatur_coloring(nodes, edges)
    exact = exact_coloring(nodes, edges)
    assert verify_coloring(edges, greedy)
    assert verify_coloring(edges, exact)
    assert max(exact.values(), default=-1) <= max(greedy.values(), default=-1)


@pytest.mark.parametrize("seed", range(6))
def test_exact_matches_networkx_lower_bound(seed):
    """Cross-check against networkx: our exact count is never above any
    networkx strategy and is a valid chromatic number witness."""
    nodes, edges = _random_graph(10, 0.45, seed)
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(tuple(edge) for edge in edges)
    ours = max(exact_coloring(nodes, edges).values(), default=-1) + 1
    for strategy in ("largest_first", "DSATUR", "smallest_last"):
        nx_coloring = nx.coloring.greedy_color(graph, strategy=strategy)
        nx_count = max(nx_coloring.values(), default=-1) + 1
        assert ours <= nx_count
    # Lower bound: any clique forces that many colors.
    clique_size = max((len(c) for c in nx.find_cliques(graph)), default=0)
    assert ours >= clique_size


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_coloring_always_valid_and_complete(n, p, seed):
    nodes, edges = _random_graph(n, p, seed)
    for solver in (dsatur_coloring, exact_coloring):
        coloring = solver(nodes, edges)
        assert set(coloring) == set(nodes)
        assert verify_coloring(edges, coloring)
        used = sorted(set(coloring.values()))
        assert used == list(range(len(used)))  # colors are dense
