"""Spec metadata for the storage libraries (blk, kv).

The new micro-libraries must be full citizens of the §2 pipeline:
their specs round-trip through the parser, pairwise compatibility
treats them like any other library, and design-space exploration over
a library set that includes them neither breaks nor perturbs the
coloring memo / perf-cache keys of pre-existing sets.
"""

import json

from repro.core.builder import library_defs
from repro.core.coloring import ColoringCache
from repro.core.compatibility import can_share, violations
from repro.core.config import BuildConfig
from repro.core.hardening import enumerate_deployments, iter_deployments
from repro.core.perfcache import candidate_key
from repro.core.spec_parser import parse_spec
from repro.libos.blk.blkdev import BlockDeviceLibrary
from repro.libos.kv.store import KVStoreLibrary

BLK = parse_spec("blk", BlockDeviceLibrary.SPEC)
KV = parse_spec("kv", KVStoreLibrary.SPEC)


# --- spec_parser round-trip --------------------------------------------------


def test_blk_spec_roundtrips_through_describe():
    reparsed = parse_spec("blk", BLK.describe())
    assert reparsed.reads == BLK.reads
    assert reparsed.writes == BLK.writes
    assert reparsed.calls == BLK.calls
    assert reparsed.api == BLK.api
    assert reparsed.requires == BLK.requires


def test_kv_spec_roundtrips_through_describe():
    reparsed = parse_spec("kv", KV.describe())
    assert reparsed.reads == KV.reads
    assert reparsed.writes == KV.writes
    assert reparsed.calls == KV.calls
    assert reparsed.api == KV.api
    assert reparsed.requires == KV.requires


def test_kv_spec_content():
    assert "put" in KV.api and "recover" in KV.api
    assert KV.requires is not None
    # Every exported entry point is an allowed inbound call target.
    assert set(KV.api) <= KV.requires.calls
    # blk models unmodified device code: wild accesses, no Requires.
    assert BLK.requires is None
    assert "blk_flush" in BLK.api


def test_library_defs_parse_storage_libraries():
    cfg = BuildConfig(libraries=["libc", "blk", "kv"], backend="none")
    defs = {d.name: d for d in library_defs(cfg)}
    assert {"libc", "blk", "kv", "sched", "alloc"} <= set(defs)
    assert defs["kv"].spec.requires is not None
    assert "blk::blk_flush" in defs["kv"].true_behavior["calls"]


# --- pairwise compatibility --------------------------------------------------


def test_wild_blk_cannot_share_with_kv():
    """kv's Requires clause shields it from its own unsafe device
    driver: colocating them needs either hardening or an explicit
    (trusted) compartment assignment."""
    assert not can_share(BLK, KV)
    categories = {v.category for v in violations(BLK, KV)}
    assert "write" in categories and "call" in categories
    # Directional: kv does not violate blk (blk has no Requires).
    assert violations(KV, BLK) == []


def test_bounded_caller_can_share_with_kv():
    client = parse_spec(
        "client",
        """
        [Memory access] Read(Own,Shared); Write(Shared)
        [Call] kv::put, kv::get, kv::sync
        """,
    )
    assert can_share(client, KV)
    assert violations(client, KV) == []


def test_caller_of_internal_symbol_is_rejected():
    snooper = parse_spec(
        "snooper",
        """
        [Memory access] Read(Own); Write(Own)
        [Call] kv::_append_record
        """,
    )
    found = violations(snooper, KV)
    assert len(found) == 1 and found[0].category == "call"


# --- exploration over a storage library set ----------------------------------


def _storage_defs():
    return library_defs(
        BuildConfig(libraries=["libc", "blk", "kv"], backend="none")
    )


def test_iter_deployments_covers_storage_set():
    defs = _storage_defs()
    stats = {}
    lazy = list(iter_deployments(defs, stats=stats))
    eager = enumerate_deployments(defs)
    assert len(lazy) > 0
    assert [d.key() for d in lazy] == [d.key() for d in eager]
    # kv's Requires forces *unmodified* blk out of its compartment;
    # only hardened blk variants may legally colocate with kv.
    colocated = 0
    for deployment in lazy:
        for members in deployment.compartments:
            if {"blk", "kv"} <= set(members):
                colocated += 1
                assert deployment.choices["blk"] != ()
    assert colocated > 0  # hardening does open up denser layouts


def test_coloring_memo_survives_storage_exploration():
    """Exploring a kv/blk set does not invalidate memo entries of a
    pre-existing library set: re-running the old set on the shared
    cache is 100% hits."""
    cache = ColoringCache()
    old_defs = library_defs(
        BuildConfig(libraries=["libc", "netstack"], backend="none")
    )
    list(iter_deployments(old_defs, coloring_cache=cache))
    entries_before = len(cache)

    list(iter_deployments(_storage_defs(), coloring_cache=cache))
    assert len(cache) > entries_before  # new graphs, new entries

    misses_before = cache.misses
    hits_before = cache.hits
    list(iter_deployments(old_defs, coloring_cache=cache))
    assert cache.misses == misses_before  # old entries all still hit
    assert cache.hits == hits_before + entries_before


def test_candidate_keys_unperturbed_by_storage_libraries():
    """Perf-cache keys derive only from the deployment's own partition
    and context — registering kv/blk cannot invalidate cached
    measurements of unrelated deployments."""
    old_defs = library_defs(
        BuildConfig(libraries=["libc", "netstack", "iperf"], backend="none")
    )
    deployment = next(iter(iter_deployments(old_defs)))
    key = candidate_key(deployment, "iperf", "mpk-shared")
    payload = json.loads(key)
    flat = {name for members in payload["partition"] for name in members}
    assert "kv" not in flat and "blk" not in flat

    # Keys over kv deployments are deterministic and context-sensitive.
    storage = next(iter(iter_deployments(_storage_defs())))
    kv_key = candidate_key(storage, "redis", "mpk-shared")
    assert kv_key == candidate_key(storage, "redis", "mpk-shared")
    assert kv_key != candidate_key(storage, "redis", "vm-rpc")
    assert "kv" in {
        name
        for members in json.loads(kv_key)["partition"]
        for name in members
    }
