"""The inspection and inference CLI tools."""

import pytest

from repro.core.config import BuildConfig
from repro.tools.infer import main as infer_main
from repro.tools.infer import report
from repro.tools.inspect import (
    describe_config,
    format_conflicts,
    format_specs,
    main as inspect_main,
)


def test_format_specs_renders_dsl():
    text = format_specs(BuildConfig(libraries=["libc"]))
    assert "--- libc ---" in text
    assert "Read(*)" in text
    assert "--- sched ---" in text
    assert "[Requires]" in text


def test_format_conflicts_explains_edges():
    text = format_conflicts(BuildConfig(libraries=["libc"]))
    assert "libc <-> sched" in text
    assert "may write Own memory" in text


def test_format_conflicts_clean_set():
    text = format_conflicts(BuildConfig(libraries=["iperf"]))
    # iperf/sched/alloc are mutually compatible.
    assert "iperf" not in text or "no conflicts" in text


def test_describe_config_sections():
    text = describe_config(
        BuildConfig(
            libraries=["libc", "netstack"],
            hardening={"netstack": ("asan", "cfi")},
        )
    )
    assert "== Library metadata ==" in text
    assert "== Conflict graph ==" in text
    assert "== Enumerated deployments" in text
    assert "netstack [asan+cfi]" in text


def test_inspect_cli(capsys):
    assert inspect_main(["libc", "--harden", "libc=asan+cfi"]) == 0
    out = capsys.readouterr().out
    assert "libc [asan+cfi]" in out


def test_infer_report_on_mq_workload():
    text = report(["libc", "mq"])
    assert "== mq" in text
    assert "libc::sem_p" in text
    assert "validation against declared metadata" in text


def test_infer_report_redis_workload():
    text = report(["libc", "netstack", "redis"])
    assert "netstack::send" in text  # redis responds
    assert "== redis" in text


def test_infer_cli(capsys):
    assert infer_main(["libc"]) == 0
    out = capsys.readouterr().out
    assert "== libc" in out


def test_infer_fallback_workload_semaphores():
    text = report(["libc"])
    assert "sched::block_notify" in text or "sched::wake_one" in text
