"""Simulation-backed explorer performance estimation."""

import pytest

from repro.core.autobench import build_for_deployment, simulated_perf_fn
from repro.core.builder import library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import Explorer

LIBS = ["libc", "netstack", "iperf"]


@pytest.fixture(scope="module")
def explorer():
    return Explorer(library_defs(BuildConfig(libraries=LIBS)))


def test_build_for_deployment_materialises_layout(explorer):
    deployment = explorer.deployments[0]
    image = build_for_deployment(deployment, LIBS)
    assert len(image.compartments) == deployment.num_compartments
    for name, techniques in deployment.choices.items():
        if techniques and "asan" in techniques:
            from repro.sh.asan import AsanAllocator

            assert isinstance(
                image.compartment_of(name).allocator, AsanAllocator
            )


def test_single_compartment_needs_no_isolation(explorer):
    merged = [
        d for d in explorer.deployments if d.num_compartments == 1
    ]
    if not merged:
        pytest.skip("no single-compartment deployment in this space")
    image = build_for_deployment(merged[0], LIBS)
    assert image.config.backend == "none"


def test_simulated_perf_orders_deployments(explorer):
    perf = simulated_perf_fn(LIBS, workload="iperf")
    costs = {id(d): perf(d) for d in explorer.deployments}
    assert all(cost > 0 for cost in costs.values())
    # Strategy 2 with the measured estimator picks a real minimum.
    best = explorer.best_performance_meeting([], perf_fn=perf)
    assert perf(best) == min(costs.values())


def test_memoisation_avoids_rebuilds(explorer):
    perf = simulated_perf_fn(LIBS, workload="iperf")
    deployment = explorer.deployments[0]
    first = perf(deployment)
    second = perf(deployment)  # cached: deterministic and instant
    assert first == second


def test_redis_workload_estimator():
    libs = ["libc", "netstack", "redis"]
    explorer = Explorer(library_defs(BuildConfig(libraries=libs)))
    perf = simulated_perf_fn(libs, workload="redis")
    cost = perf(explorer.deployments[0])
    assert 100 < cost < 100_000  # ns per request, sane range


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        simulated_perf_fn(LIBS, workload="fortran")


def test_perf_fn_keeps_metric_snapshots(explorer):
    perf = simulated_perf_fn(LIBS, workload="iperf")
    assert perf.snapshots == {}
    deployment = explorer.deployments[0]
    perf(deployment)
    assert len(perf.snapshots) == 1
    snapshot = next(iter(perf.snapshots.values()))
    assert snapshot["clock_ns"] > 0
    assert "counters" in snapshot and "crossing_matrix" in snapshot
    # Memoised re-measures don't duplicate snapshots.
    perf(deployment)
    assert len(perf.snapshots) == 1
