"""Unit tests for pairwise compatibility — the paper's §2 logic."""

from repro.core.compatibility import (
    can_share,
    conflict_graph,
    explain_conflict,
    violations,
)
from repro.core.metadata import LibrarySpec, Region, Requires
from repro.core.spec_parser import parse_spec

SCHEDULER = parse_spec(
    "sched",
    """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] alloc::malloc, alloc::free
    [API] thread_add(); thread_rm(); yield_()
    [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), \
*(Call, thread_rm), *(Call, yield_)
    """,
)

UNSAFE_C = parse_spec(
    "unsafe_c",
    """
    [Memory access] Read(*); Write(*)
    [Call] *
    """,
)

BOUNDED = parse_spec(
    "bounded",
    """
    [Memory access] Read(Own,Shared); Write(Own,Shared)
    [Call] sched::thread_add
    """,
)


def test_paper_worked_example_scheduler_vs_unsafe_c():
    """'These two libraries cannot be run in the same compartment.'"""
    assert not can_share(SCHEDULER, UNSAFE_C)
    found = violations(UNSAFE_C, SCHEDULER)
    categories = {violation.category for violation in found}
    assert "write" in categories  # could write the scheduler's own memory
    assert "call" in categories  # could jump past the entry points


def test_no_requires_means_compatible():
    """'If both libraries have no Requires clause, the answer is yes.'"""
    other_unsafe = LibrarySpec(
        name="other",
        reads=frozenset({Region.ALL}),
        writes=frozenset({Region.ALL}),
        calls=None,
    )
    assert can_share(UNSAFE_C, other_unsafe)


def test_bounded_library_can_join_scheduler():
    assert can_share(SCHEDULER, BOUNDED)
    assert explain_conflict(SCHEDULER, BOUNDED) == []


def test_disallowed_entry_point_blocks_sharing():
    caller = LibrarySpec(
        name="caller", calls=frozenset({"sched::secret_internal"})
    )
    found = violations(caller, SCHEDULER)
    assert len(found) == 1
    assert found[0].category == "call"
    assert "secret_internal" in found[0].detail


def test_calls_to_third_parties_do_not_concern_owner():
    caller = LibrarySpec(name="caller", calls=frozenset({"libc::memcpy"}))
    assert violations(caller, SCHEDULER) == []


def test_shared_write_needs_allowance():
    owner = LibrarySpec(
        name="owner",
        requires=Requires(writes=frozenset()),  # nothing writable
    )
    actor = LibrarySpec(name="actor")  # writes Own+Shared
    found = violations(actor, owner)
    assert any(v.category == "write" for v in found)
    # An actor writing only its own memory is fine.
    loner = LibrarySpec(name="loner", writes=frozenset({Region.OWN}))
    assert violations(loner, owner) == []


def test_read_allowance_implied_by_write_allowance():
    owner = LibrarySpec(
        name="owner",
        requires=Requires(
            reads=frozenset(), writes=frozenset({Region.SHARED})
        ),
    )
    reader = LibrarySpec(
        name="reader",
        reads=frozenset({Region.SHARED}),
        writes=frozenset({Region.OWN}),
    )
    assert violations(reader, owner) == []


def test_unbounded_reads_violate_read_restriction():
    owner = LibrarySpec(
        name="owner", requires=Requires(reads=frozenset({Region.SHARED}))
    )
    snooper = LibrarySpec(name="snooper", reads=frozenset({Region.ALL}))
    found = violations(snooper, owner)
    assert any(v.category == "read" for v in found)


def test_violation_is_directional():
    # The scheduler does not violate the unsafe lib (no Requires there),
    # only the other way round.
    assert violations(SCHEDULER, UNSAFE_C) == []
    assert violations(UNSAFE_C, SCHEDULER) != []


def test_conflict_graph_structure():
    specs = [SCHEDULER, UNSAFE_C, BOUNDED]
    nodes, edges = conflict_graph(specs)
    assert set(nodes) == {"sched", "unsafe_c", "bounded"}
    assert frozenset({"sched", "unsafe_c"}) in edges
    assert frozenset({"sched", "bounded"}) not in edges
    assert frozenset({"unsafe_c", "bounded"}) not in edges


def test_conflict_graph_duplicate_names_rejected():
    import pytest

    with pytest.raises(ValueError):
        conflict_graph([BOUNDED, BOUNDED])


def test_violation_str():
    found = violations(UNSAFE_C, SCHEDULER)
    text = str(found[0])
    assert "unsafe_c" in text and "sched" in text
