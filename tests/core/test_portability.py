"""Device-portability exploration (paper §2's 'largest number of
devices' objective)."""

import pytest

from repro.core.builder import library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import (
    DEVICE_PROFILES,
    Explorer,
    backend_for_device,
)

LIBS = ["libc", "netstack", "iperf"]


@pytest.fixture(scope="module")
def explorer():
    return Explorer(library_defs(BuildConfig(libraries=LIBS)))


def test_single_compartment_runs_anywhere(explorer):
    merged = next(d for d in explorer.deployments if d.num_compartments == 1)
    for backends in DEVICE_PROFILES.values():
        assert backend_for_device(merged, backends) == "none"


def test_multi_compartment_needs_hardware(explorer):
    split = next(d for d in explorer.deployments if d.num_compartments > 1)
    assert backend_for_device(split, frozenset({"none"})) is None
    assert backend_for_device(
        split, frozenset({"none", "vm-rpc"})
    ) == "vm-rpc"


def test_cheapest_backend_preferred(explorer):
    split = next(d for d in explorer.deployments if d.num_compartments > 1)
    everything = frozenset(
        {"none", "cheri", "mpk-shared", "mpk-switched", "vm-rpc"}
    )
    assert backend_for_device(split, everything) == "cheri"
    no_cheri = everything - {"cheri"}
    assert backend_for_device(split, no_cheri) == "mpk-shared"


def test_most_portable_prefers_sh_over_hardware(explorer):
    """With wild-writes forbidden, the SH-hardened single-compartment
    build covers every device, including those with no isolation
    hardware at all."""
    result = explorer.most_portable(["no-wild-writes"])
    assert result is not None
    deployment, placements = result
    assert set(placements) == set(DEVICE_PROFILES)
    assert "embedded-no-virt" in placements
    # Coverage of the no-hardware device implies SH did the work.
    assert deployment.hardened_libraries()
    assert deployment.num_compartments == 1


@pytest.fixture(scope="module")
def isolating_explorer():
    # "Predefined compartments": the user demands the netstack be kept
    # apart regardless of metadata compatibility.
    return Explorer(
        library_defs(BuildConfig(libraries=LIBS)), isolate=("netstack",)
    )


def test_most_portable_with_structural_requirement(isolating_explorer):
    """Requiring structural isolation excludes hardware-less devices."""
    explorer = isolating_explorer
    result = explorer.most_portable(["isolated:netstack"])
    assert result is not None
    deployment, placements = result
    assert deployment.num_compartments > 1
    assert "embedded-no-virt" not in placements
    assert placements["x86-mpk-kvm"] == "cheri" or placements[
        "x86-mpk-kvm"
    ].startswith("mpk")


def test_most_portable_custom_device_set(isolating_explorer):
    explorer = isolating_explorer
    only_vm = {"cloud": frozenset({"none", "vm-rpc"})}
    result = explorer.most_portable(["isolated:netstack"], devices=only_vm)
    assert result is not None
    _, placements = result
    assert placements == {"cloud": "vm-rpc"}


def test_most_portable_unsatisfiable_returns_none(explorer):
    # A requirement naming an unknown library raises instead; use a
    # satisfiable-nowhere one by shrinking the device set to empty.
    result = explorer.most_portable(["no-wild-writes"], devices={})
    assert result is not None  # deployment still exists, zero coverage
    _, placements = result
    assert placements == {}


def test_portable_choice_is_buildable(explorer):
    """The portability winner actually builds and runs per device."""
    from repro.core.autobench import build_for_deployment

    deployment, placements = explorer.most_portable(["no-wild-writes"])
    sample = dict(list(placements.items())[:2])
    for device, backend in sample.items():
        image = build_for_deployment(deployment, LIBS, backend=backend)
        from repro.apps import run_iperf

        result = run_iperf(image, 1024, 1 << 16)
        assert result.throughput_mbps > 0


def test_isolate_constraint_forces_own_compartment(isolating_explorer):
    for deployment in isolating_explorer.deployments:
        members = [
            name
            for name, color in deployment.coloring.items()
            if color == deployment.coloring["netstack"]
        ]
        assert members == ["netstack"]


def test_isolate_unknown_library_rejected():
    from repro.core.errors import SpecError

    with pytest.raises(SpecError):
        Explorer(
            library_defs(BuildConfig(libraries=LIBS)), isolate=("ghost",)
        )
