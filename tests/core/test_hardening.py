"""SH spec transformations and deployment enumeration (paper §2)."""

import pytest

from repro.core.hardening import (
    TRANSFORMATIONS,
    LibraryDef,
    enumerate_deployments,
    sh_variants,
    transform_spec,
)
from repro.core.metadata import LibrarySpec, Region, Requires
from repro.core.spec_parser import parse_spec

SCHED = LibraryDef(
    name="sched",
    spec=parse_spec(
        "sched",
        """
        [Memory access] Read(Own,Shared); Write(Own,Shared)
        [Call] alloc::malloc
        [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add)
        """,
    ),
    true_behavior={"writes": ["Own", "Shared"], "reads": ["Own", "Shared"]},
)

UNSAFE = LibraryDef(
    name="unsafe",
    spec=parse_spec("unsafe", "[Memory access] Read(*); Write(*)\n[Call] *"),
    true_behavior={
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["sched::thread_add", "alloc::malloc"],
    },
)

OPAQUE = LibraryDef(
    name="opaque",
    spec=parse_spec("opaque", "[Memory access] Read(*); Write(*)\n[Call] *"),
    true_behavior={},  # no analysis facts: cannot be narrowed
)


def test_cfi_transformation():
    transformation = TRANSFORMATIONS["cfi"]
    assert transformation.applicable(UNSAFE)
    narrowed = transformation.transform(UNSAFE, UNSAFE.spec)
    assert narrowed.calls == frozenset(
        {"sched::thread_add", "alloc::malloc"}
    )
    # Memory behaviour untouched by CFI.
    assert narrowed.writes_everything


def test_cfi_not_applicable_without_facts():
    assert not TRANSFORMATIONS["cfi"].applicable(OPAQUE)
    unchanged = TRANSFORMATIONS["cfi"].transform(OPAQUE, OPAQUE.spec)
    assert unchanged.calls is None


def test_dfi_transformation():
    """Paper: 'if the data flow graph of a library shows that all its
    writes are to its own data, Writes(*) will be transformed'."""
    transformation = TRANSFORMATIONS["dfi"]
    assert transformation.applicable(UNSAFE)
    narrowed = transformation.transform(UNSAFE, UNSAFE.spec)
    assert narrowed.writes == frozenset({Region.OWN, Region.SHARED})
    assert narrowed.reads_everything  # DFI bounds only writes


def test_asan_transformation_bounds_both():
    narrowed = TRANSFORMATIONS["asan"].transform(UNSAFE, UNSAFE.spec)
    assert not narrowed.writes_everything
    assert not narrowed.reads_everything


def test_transformations_not_applicable_to_bounded_lib():
    for name in ("cfi", "dfi", "asan"):
        assert not TRANSFORMATIONS[name].applicable(SCHED)
        assert TRANSFORMATIONS[name].transform(SCHED, SCHED.spec) == SCHED.spec


def test_transform_spec_composes():
    spec = transform_spec(UNSAFE, ("asan", "cfi"))
    assert not spec.writes_everything
    assert spec.calls is not None
    # Cost-only techniques are ignored at the spec level.
    assert transform_spec(UNSAFE, ("stackprotector",)) == UNSAFE.spec


def test_sh_variants_paper_rule():
    """'1) for each library that writes to all memory, enable DFI/ASAN;
    2) for each library that can execute arbitrary code, enable CFI.'"""
    variants = sh_variants(UNSAFE)
    assert variants[0] == ()  # the without-SH version always exists
    assert ("asan", "cfi") in variants
    assert len(variants) == 2  # 'two versions: one with SH, one without'


def test_sh_variants_alternatives():
    variants = sh_variants(UNSAFE, alternatives=True)
    assert ("asan", "cfi") in variants
    assert ("dfi", "cfi") in variants


def test_sh_variants_for_bounded_and_opaque():
    assert sh_variants(SCHED) == [()]
    assert sh_variants(OPAQUE) == [()]  # nothing can be proven


def test_enumerate_deployments_paper_example():
    """Scheduler + unsafe C lib: the SH version shares a compartment,
    the original requires a separate one (paper §2)."""
    deployments = enumerate_deployments([SCHED, UNSAFE])
    assert len(deployments) == 2  # one per unsafe-lib version
    by_choice = {d.choices["unsafe"]: d for d in deployments}
    plain = by_choice[()]
    hardened = by_choice[("asan", "cfi")]
    assert plain.num_compartments == 2
    assert plain.coloring["sched"] != plain.coloring["unsafe"]
    assert hardened.num_compartments == 1
    assert hardened.coloring["sched"] == hardened.coloring["unsafe"]


def test_deployment_introspection():
    deployments = enumerate_deployments([SCHED, UNSAFE])
    hardened = next(d for d in deployments if d.choices["unsafe"])
    assert hardened.hardened_libraries() == ["unsafe"]
    assert hardened.compartments == [["sched", "unsafe"]]
    text = hardened.describe()
    assert "unsafe[asan+cfi]" in text


def test_enumeration_size_scales_with_hardenable_libs():
    libs = [SCHED, UNSAFE, OPAQUE]
    deployments = enumerate_deployments(libs)
    # Only `unsafe` has two versions; sched and opaque have one each.
    assert len(deployments) == 2


def test_requires_survive_transformation():
    libdef = LibraryDef(
        name="svc",
        spec=LibrarySpec(
            name="svc",
            writes=frozenset({Region.ALL}),
            calls=None,
            requires=Requires(calls=frozenset({"api"})),
        ),
        true_behavior={"writes": ["Own"], "calls": []},
    )
    spec = transform_spec(libdef, ("asan", "cfi"))
    assert spec.requires == libdef.spec.requires


def test_bad_region_name_in_facts_rejected():
    from repro.core.errors import SpecError

    libdef = LibraryDef(
        name="bad",
        spec=parse_spec("bad", "[Memory access] Read(*); Write(*)"),
        true_behavior={"writes": ["Heap"]},
    )
    with pytest.raises(SpecError):
        transform_spec(libdef, ("dfi",))
