"""Design-space explorer: the paper's two search strategies."""

import pytest

from repro.core.errors import CompatibilityError
from repro.core.explorer import (
    Explorer,
    estimate_crossing_cost,
    requirement_satisfied,
    security_score,
)
from repro.core.hardening import LibraryDef, enumerate_deployments
from repro.core.spec_parser import parse_spec

SCHED = LibraryDef(
    name="sched",
    spec=parse_spec(
        "sched",
        """
        [Memory access] Read(Own,Shared); Write(Own,Shared)
        [Call] alloc::malloc
        [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add)
        """,
    ),
    true_behavior={"calls": ["alloc::malloc"]},
)
NETSTACK = LibraryDef(
    name="netstack",
    spec=parse_spec("netstack", "[Memory access] Read(*); Write(*)\n[Call] *"),
    true_behavior={
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["libc::memcpy", "sched::thread_add"],
    },
)
LIBC = LibraryDef(
    name="libc",
    spec=parse_spec("libc", "[Memory access] Read(*); Write(*)\n[Call] *"),
    true_behavior={
        "writes": ["Own", "Shared"],
        "reads": ["Own", "Shared"],
        "calls": ["sched::thread_add"],
    },
)
LIBS = [SCHED, NETSTACK, LIBC]


@pytest.fixture(scope="module")
def explorer():
    return Explorer(LIBS)


def test_enumeration_covers_all_combinations(explorer):
    # netstack and libc each have 2 versions: 4 deployments.
    assert len(explorer.deployments) == 4


def test_security_score_prefers_separation_and_sh(explorer):
    deployments = explorer.deployments
    fully_hardened = next(
        d
        for d in deployments
        if d.choices["netstack"] and d.choices["libc"]
    )
    nothing = next(
        d
        for d in deployments
        if not d.choices["netstack"] and not d.choices["libc"]
    )
    assert security_score(fully_hardened) > security_score(nothing) - 10
    # Unhardened wild-writers sharing a compartment are penalised.
    sizes = {}
    for deployment in deployments:
        assert isinstance(security_score(deployment), float)


def test_crossing_estimator_counts_boundary_edges():
    deployments = enumerate_deployments(LIBS)
    for deployment in deployments:
        cost = estimate_crossing_cost(deployment, LIBS)
        assert cost >= 0
    # A deployment with everything co-located has zero crossings.
    merged = next(d for d in deployments if d.num_compartments == 1)
    assert estimate_crossing_cost(merged, LIBS, sh_weight=0) == 0


def test_max_security_within_budget(explorer):
    generous = explorer.max_security_within_budget(budget=1e9)
    assert generous is not None
    # With a generous budget the best deployment separates or hardens.
    assert security_score(generous) == max(
        security_score(d) for d in explorer.deployments
    )


def test_budget_too_tight_returns_none(explorer):
    assert explorer.max_security_within_budget(budget=-1.0) is None


def test_best_performance_meeting_requirements(explorer):
    best = explorer.best_performance_meeting(["no-wild-writes"])
    assert best is not None
    for name, spec in best.specs.items():
        sizes = {}
        for color in best.coloring.values():
            sizes[color] = sizes.get(color, 0) + 1
        if spec.writes_everything:
            assert sizes[best.coloring[name]] == 1


def test_requirement_vocabulary(explorer):
    deployment = explorer.deployments[0]
    assert isinstance(
        requirement_satisfied(deployment, "isolated:sched", LIBS), bool
    )
    assert isinstance(
        requirement_satisfied(deployment, "write-protected:sched", LIBS), bool
    )
    assert isinstance(
        requirement_satisfied(deployment, "cfi:netstack", LIBS), bool
    )


def test_cfi_requirement_tracks_choice(explorer):
    hardened = next(d for d in explorer.deployments if d.choices["netstack"])
    plain = next(d for d in explorer.deployments if not d.choices["netstack"])
    assert requirement_satisfied(hardened, "cfi:netstack", LIBS)
    assert not requirement_satisfied(plain, "cfi:netstack", LIBS)


def test_unknown_requirement_rejected(explorer):
    deployment = explorer.deployments[0]
    with pytest.raises(CompatibilityError):
        requirement_satisfied(deployment, "quantum-safe", LIBS)
    with pytest.raises(CompatibilityError):
        requirement_satisfied(deployment, "isolated:ghost", LIBS)
    with pytest.raises(CompatibilityError):
        requirement_satisfied(deployment, "blessed:sched", LIBS)


def test_impossible_requirements_return_none(explorer):
    # sched conflicts with unhardened netstack+libc; requiring
    # *everything* isolated alone plus nothing else is satisfiable, so
    # craft an impossible one instead: write-protection inside a merged
    # compartment can fail across all deployments only with a stricter
    # vocabulary — use a budget contradiction instead.
    result = explorer.best_performance_meeting(
        ["no-wild-writes"], perf_fn=lambda d: 0.0
    )
    assert result is not None


def test_custom_perf_fn_used(explorer):
    calls = []

    def perf(deployment):
        calls.append(deployment)
        return float(deployment.num_compartments)

    best = explorer.best_performance_meeting([], perf_fn=perf)
    assert best.num_compartments == min(
        d.num_compartments for d in explorer.deployments
    )
    assert len(calls) == len(explorer.deployments)
