"""profiled_cost_fn, estimator identity in the perf cache, and the
tools/profile.py CLI."""

import json

import pytest

from repro.apps import run_named_workload
from repro.core.builder import build_image, library_defs
from repro.core.config import BuildConfig
from repro.core.explorer import (
    Explorer,
    crossing_cost_fn,
    profiled_cost_fn,
)
from repro.core.perfcache import PerfCache, candidate_key
from repro.obs import WorkloadProfile, capture_profile
from repro.tools.profile import main as profile_main

LIBS = ["libc", "netstack", "redis"]


@pytest.fixture(scope="module")
def redis_profile():
    image = build_image(BuildConfig(libraries=LIBS, backend="mpk-shared"))
    with capture_profile(image, "redis") as cap:
        run_named_workload(image, "redis")
    return cap.profile


@pytest.fixture(scope="module")
def explorer():
    return Explorer(library_defs(BuildConfig(libraries=LIBS)))


class TestProfiledCostFn:
    def test_charges_measured_crossings(self, redis_profile, explorer):
        from repro.gates.registry import relative_crossing_cost

        from repro.core.hardening import Deployment

        cost = profiled_cost_fn(redis_profile)
        # An all-shared deployment (no boundaries, no hardening) costs 0.
        any_deployment = explorer.deployments[0]
        names = list(any_deployment.coloring)
        flat = Deployment(
            choices={name: () for name in names},
            specs=dict(any_deployment.specs),
            coloring={name: 0 for name in names},
        )
        assert cost(flat) == 0.0
        # A split is charged measured crossings x the backend's ns cost.
        split = next(d for d in explorer.deployments if d.num_compartments > 1)
        coloring = split.coloring
        expected = sum(
            count
            for caller, callee, count in redis_profile.edge_items()
            if caller in coloring
            and callee in coloring
            and coloring[caller] != coloring[callee]
        ) * relative_crossing_cost("mpk-shared")
        assert cost(split) == pytest.approx(expected)

    def test_hot_library_hardening_costs_more(self, redis_profile, explorer):
        cost = profiled_cost_fn(redis_profile)
        shares = redis_profile.lib_cpu_time_ns()
        hot, cold = "netstack", "redis"
        assert shares[hot] > shares[cold]
        by_hardened = {}
        for d in explorer.deployments:
            hardened = tuple(
                name for name, techs in d.choices.items() if techs
            )
            if d.num_compartments == 1 and hardened in ((hot,), (cold,)):
                by_hardened[hardened[0]] = cost(d)
        if len(by_hardened) == 2:
            assert by_hardened[hot] > by_hardened[cold]

    def test_backend_scales_crossing_charge(self, redis_profile, explorer):
        split = next(d for d in explorer.deployments if d.num_compartments > 1)
        mpk = profiled_cost_fn(redis_profile, backend="mpk-shared")
        vm = profiled_cost_fn(redis_profile, backend="vm-rpc")
        assert vm(split) > mpk(split)

    def test_estimator_identity(self, redis_profile):
        cost = profiled_cost_fn(redis_profile)
        assert cost.profile_hash == redis_profile.profile_hash()
        assert cost.estimator == (
            f"profiled:{redis_profile.profile_hash()}:mpk-shared"
        )
        other = profiled_cost_fn(redis_profile, backend="vm-rpc")
        assert other.estimator.endswith(":vm-rpc")

    def test_edges_naming_absent_libraries_are_ignored(self, redis_profile):
        defs = library_defs(BuildConfig(libraries=["libc", "netstack"]))
        cost = profiled_cost_fn(redis_profile)
        for deployment in Explorer(defs).deployments:
            # redis-> edges can't cross boundaries that don't exist.
            assert cost(deployment) >= 0.0


class TestEstimatorInCacheKeys:
    def _deployment(self, explorer):
        return explorer.deployments[0]

    def test_default_is_measured(self, explorer):
        d = self._deployment(explorer)
        assert candidate_key(d, "redis", "mpk-shared") == candidate_key(
            d, "redis", "mpk-shared", estimator="measured"
        )

    def test_estimators_never_alias(self, explorer, redis_profile):
        d = self._deployment(explorer)
        measured = candidate_key(d, "redis", "mpk-shared")
        static = candidate_key(d, "redis", "mpk-shared", estimator="static")
        profiled = candidate_key(
            d,
            "redis",
            "mpk-shared",
            estimator=f"profiled:{redis_profile.profile_hash()}:mpk-shared",
        )
        assert len({measured, static, profiled}) == 3

    def test_cache_separates_estimators(self, tmp_path, explorer):
        d = self._deployment(explorer)
        cache = PerfCache(tmp_path / "cache.json")
        cache.put(candidate_key(d, "redis", "mpk-shared"), 1.0)
        cache.put(
            candidate_key(d, "redis", "mpk-shared", estimator="static"), 2.0
        )
        reloaded = PerfCache(tmp_path / "cache.json")
        assert reloaded.get(candidate_key(d, "redis", "mpk-shared")) == 1.0
        assert (
            reloaded.get(
                candidate_key(d, "redis", "mpk-shared", estimator="static")
            )
            == 2.0
        )


class TestProfileCli:
    def _capture(self, tmp_path, workload="redis"):
        out = tmp_path / "profile.json"
        rc = profile_main(
            [
                "capture",
                "--workload",
                workload,
                "--libs",
                ",".join(LIBS),
                "--backend",
                "mpk-shared",
                "-o",
                str(out),
            ]
        )
        assert rc == 0
        return out

    def test_capture_writes_loadable_profile(self, tmp_path, capsys):
        out = self._capture(tmp_path)
        profile = WorkloadProfile.load(out)
        assert profile.workload == "redis"
        assert profile.total_crossings > 0
        assert profile.profile_hash() in capsys.readouterr().out

    def test_capture_rejects_unknown_params(self, tmp_path):
        with pytest.raises(ValueError):
            profile_main(
                [
                    "capture",
                    "--workload",
                    "redis",
                    "--param",
                    "bogus=1",
                    "-o",
                    str(tmp_path / "p.json"),
                ]
            )

    def test_recommend_checked(self, tmp_path, capsys):
        out = self._capture(tmp_path)
        config_out = tmp_path / "recommended.json"
        rc = profile_main(
            [
                "recommend",
                "--profile",
                str(out),
                "--require",
                "no-wild-writes",
                "--check",
                "-o",
                str(config_out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(config_out.read_text())
        assert payload["checked"] is True
        assert payload["estimator"].startswith("profiled:")
        # The emitted config is directly buildable.
        config = BuildConfig.from_dict(payload["recommendation"]["config"])
        image = build_image(config)
        summary, _ = run_named_workload(image, "redis")
        assert "redis" in summary

    def test_recommend_unsatisfiable(self, tmp_path, capsys):
        out = self._capture(tmp_path)
        rc = profile_main(
            [
                "recommend",
                "--profile",
                str(out),
                "--require",
                "isolated:redis",
            ]
        )
        assert rc == 1
        assert "no deployment" in capsys.readouterr().err

    def test_diff_reports_measured_delta(self, tmp_path, capsys):
        out = self._capture(tmp_path)
        diff_out = tmp_path / "diff.json"
        rc = profile_main(
            [
                "diff",
                "--profile",
                str(out),
                "--require",
                "write-protected:redis",
                "--alternatives",
                "--check",
                "-o",
                str(diff_out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(diff_out.read_text())
        assert (
            payload["profiled"]["measured"]["elapsed_ns"]
            <= payload["static"]["measured"]["elapsed_ns"]
        )
        assert payload["measured_delta_ns"] >= 0

    def test_diff_finds_iperf_win(self, tmp_path, capsys):
        """The bench headline, through the CLI: on iperf the profiled
        pick diverges from the static pick and measures faster."""
        out = tmp_path / "iperf.json"
        rc = profile_main(
            [
                "capture",
                "--workload",
                "iperf",
                "--libs",
                "libc,netstack,iperf",
                "-o",
                str(out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = profile_main(
            [
                "diff",
                "--profile",
                str(out),
                "--require",
                "write-protected:iperf",
                "--alternatives",
                "--check",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["same_pick"] is False
        assert payload["measured_delta_ns"] > 0
        assert payload["measured_speedup"] > 1.0

    def test_wrong_schema_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99, "workload": "redis"}))
        rc = profile_main(["recommend", "--profile", str(bad)])
        assert rc == 2
        assert "profile error" in capsys.readouterr().err
