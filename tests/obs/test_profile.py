"""WorkloadProfile capture, persistence, and invariants."""

import json

import pytest

from repro.apps import run_named_workload
from repro.core.builder import build_image
from repro.core.config import BuildConfig
from repro.obs import (
    ProfileError,
    WorkloadProfile,
    capture_profile,
)

LIBS = ["libc", "netstack", "redis"]


def _image(backend="mpk-shared", **overrides):
    return build_image(
        BuildConfig(libraries=LIBS, backend=backend, **overrides)
    )


def _captured(backend="mpk-shared", seed=None):
    image = _image(backend=backend)
    with capture_profile(image, "redis", seed=seed) as cap:
        run_named_workload(image, "redis")
    return cap.profile


def test_capture_records_run():
    profile = _captured()
    assert profile.workload == "redis"
    assert profile.backend == "mpk-shared"
    assert profile.libraries == LIBS
    assert profile.elapsed_ns > 0
    assert profile.total_crossings > 0
    assert profile.schema == 1
    # Edge rows are busiest-first, counts positive.
    counts = [row["crossings"] for row in profile.edges]
    assert counts == sorted(counts, reverse=True)
    assert all(count > 0 for count in counts)
    # The MPK boundary edges carry latency summaries.
    assert any("->" in edge for edge in profile.gate_latency_ns)
    for summary in profile.gate_latency_ns.values():
        assert summary["count"] > 0
        assert summary["p50"] > 0
    # CPU time lands on compartment domains, split into library shares.
    shares = profile.lib_cpu_time_ns()
    assert shares, "profiled run must attribute CPU time"
    assert set(shares) >= {"libc", "netstack", "redis"}
    assert profile.counters.get("gate_crossings", 0) > 0


def test_capture_window_is_a_delta():
    """Only in-window activity lands in the profile."""
    image = _image()
    # Warm-up outside the window: server start + one batch of SETs.
    run_named_workload(image, "redis", {"gets": 5})
    warm_crossings = image.machine.obs.metrics.counter("gate_crossings")
    assert warm_crossings > 0
    with capture_profile(image, "redis") as cap:
        pass  # empty window
    assert cap.profile.total_crossings == 0
    assert cap.profile.elapsed_ns == 0
    assert cap.profile.counters == {}
    assert cap.profile.gate_latency_ns == {}


def test_capture_restores_flags_and_leaves_no_open_spans():
    image = _image()
    cpu = image.machine.cpu
    metrics = image.machine.obs.metrics
    assert cpu.attribute_time is False
    assert metrics.record_edge_latency is False
    with capture_profile(image, "redis"):
        assert cpu.attribute_time is True
        assert metrics.record_edge_latency is True
        run_named_workload(image, "redis")
    assert cpu.attribute_time is False
    assert metrics.record_edge_latency is False
    # A profiled run leaves the tracer balanced: every span closed.
    assert image.machine.obs.tracer.open_spans() == []


def test_capture_exception_skips_profile():
    image = _image()
    with pytest.raises(RuntimeError):
        with capture_profile(image, "redis") as cap:
            raise RuntimeError("boom")
    assert cap.profile is None
    assert image.machine.obs.metrics.record_edge_latency is False


def test_roundtrip_and_hash(tmp_path):
    profile = _captured(seed=7)
    # dict round-trip
    clone = WorkloadProfile.from_dict(json.loads(json.dumps(profile.to_dict())))
    assert clone == profile
    assert clone.profile_hash() == profile.profile_hash()
    # file round-trip
    path = profile.save(tmp_path / "p.json")
    loaded = WorkloadProfile.load(path)
    assert loaded == profile
    assert loaded.seed == 7
    # hash is the canonical-JSON identity: 12 hex chars, stable
    assert len(profile.profile_hash()) == 12
    assert profile.dumps() == loaded.dumps()


def test_capture_is_deterministic():
    first = _captured()
    second = _captured()
    assert first.profile_hash() == second.profile_hash()
    assert first == second


def test_schema_version_is_enforced(tmp_path):
    profile = _captured()
    data = profile.to_dict()
    data["schema"] = 99
    with pytest.raises(ProfileError):
        WorkloadProfile.from_dict(data)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ProfileError):
        WorkloadProfile.load(path)
    with pytest.raises(ProfileError):
        WorkloadProfile.from_dict({"workload": "redis"})


def test_profiling_on_vs_off_is_bit_identical():
    """The pipeline's foundation: capture charges zero simulated time."""
    plain_image = _image()
    plain = run_named_workload(plain_image, "redis")
    profiled_image = _image()
    with capture_profile(profiled_image, "redis"):
        profiled = run_named_workload(profiled_image, "redis")
    assert plain == profiled
    assert (
        plain_image.machine.cpu.clock_ns
        == profiled_image.machine.cpu.clock_ns
    )
    assert (
        plain_image.metrics_snapshot()["counters"]["gate_crossings"]
        == profiled_image.metrics_snapshot()["counters"]["gate_crossings"]
    )


def test_vm_rpc_retries_do_not_inflate_crossings():
    """A vm-rpc retry (dropped notification) and a duplicated
    notification are transport events, not extra crossings: the edge
    count must equal the number of calls made through the gate."""
    from repro.resilience import InjectionPlan, arm

    def crossings_into_netstack(plan):
        image = build_image(
            BuildConfig(
                libraries=["libc", "netstack", "iperf"],
                compartments=[
                    ["netstack"],
                    ["sched", "alloc", "libc", "iperf"],
                ],
                backend="vm-rpc",
                failure_policy="propagate",
            )
        )
        if plan is not None:
            arm(image, plan)
        stub = image.lib("iperf").stub("netstack")
        cpu = image.machine.cpu
        cpu.push_context(image.compartment_of("iperf").make_context("test"))
        with capture_profile(image, "probe") as cap:
            for _ in range(5):
                stub.call("net_stats")
        cpu.pop_context()
        stats = image.machine.cpu.stats
        matrix = cap.profile.crossing_matrix()
        return matrix["iperf"]["netstack"], stats

    clean, _ = crossings_into_netstack(None)
    assert clean == 5

    dropped, stats = crossings_into_netstack(
        InjectionPlan(seed=1).drop_vm_notify(nth=2)
    )
    assert stats["vm_rpc_retries"] >= 1
    assert dropped == 5, "a retried crossing must count once"

    duplicated, stats = crossings_into_netstack(
        InjectionPlan(seed=1).duplicate_vm_notify(nth=2)
    )
    assert stats["vm_rpc_duplicates"] >= 1
    assert duplicated == 5, "a duplicated notification must count once"


def test_crossing_matrix_matches_edges():
    profile = _captured()
    matrix = profile.crossing_matrix()
    total = sum(sum(row.values()) for row in matrix.values())
    assert total == profile.total_crossings
    for caller, callee, count in profile.edge_items():
        assert matrix[caller][callee] >= count or True
    # Same aggregation the registry reports for the live image.
    image = _image()
    with capture_profile(image, "redis") as cap:
        run_named_workload(image, "redis")
    assert cap.profile.crossing_matrix() == matrix


def test_lib_cpu_time_splits_compartment_time():
    profile = _captured()
    shares = profile.lib_cpu_time_ns()
    # Shares cover every library that ran and sum to the attributed time.
    assert pytest.approx(sum(shares.values())) == sum(
        profile.cpu_time_ns.values()
    )
    # Multi-member domains are split evenly among their members.
    for name, ns in profile.cpu_time_ns.items():
        members = name.split("+")
        for member in members:
            assert shares[member] >= ns / len(members) - 1e-9


def test_describe_is_human_readable():
    profile = _captured()
    text = profile.describe()
    assert profile.profile_hash() in text
    assert "redis" in text
    assert "->" in text
