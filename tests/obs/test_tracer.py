"""Tracer semantics: spans, tracks, and the disabled no-op guarantee."""

import pytest

from repro.obs.tracer import HOST_TRACK, SCHED_TRACK, Tracer


def make_tracer(start=0.0):
    clock = {"now": start}
    tracer = Tracer(clock=lambda: clock["now"])
    return tracer, clock


def test_disabled_tracer_records_nothing():
    tracer, clock = make_tracer()
    tracer.begin("a", "cat")
    tracer.end()
    tracer.complete("b", "cat", 0.0)
    tracer.instant("c", "cat")
    tracer.counter("d", {"v": 1})
    with tracer.span("e", "cat"):
        pass
    assert tracer.events == []
    assert tracer.open_spans() == []


def test_begin_end_nesting_on_one_track():
    tracer, clock = make_tracer()
    tracer.enable()
    tracer.begin("outer", "gate")
    clock["now"] = 10.0
    tracer.begin("inner", "gate")
    clock["now"] = 20.0
    tracer.end()
    clock["now"] = 30.0
    tracer.end()
    phases = [(e["name"], e["ph"], e["ts"]) for e in tracer.events]
    assert phases == [
        ("outer", "B", 0.0),
        ("inner", "B", 10.0),
        ("inner", "E", 20.0),
        ("outer", "E", 30.0),
    ]
    assert tracer.open_spans() == []


def test_end_without_begin_raises():
    tracer, _ = make_tracer()
    tracer.enable()
    with pytest.raises(RuntimeError):
        tracer.end()


def test_spans_survive_track_interleaving():
    """The invoke_gen pattern: a span opened on thread A's track stays
    open while thread B runs and closes correctly after A resumes."""
    tracer, clock = make_tracer()
    tracer.enable()
    tracer.set_track(2, "thread-a")
    tracer.begin("a.blocking", "gate")
    # A blocks; scheduler switches to B.
    clock["now"] = 5.0
    tracer.set_track(3, "thread-b")
    tracer.begin("b.work", "gate")
    clock["now"] = 8.0
    tracer.end()
    # Back to A, which unblocks and returns from its gate.
    clock["now"] = 12.0
    tracer.set_track(2)
    assert tracer.open_spans() == [(2, "a.blocking", "gate")]
    tracer.end()
    assert tracer.open_spans() == []
    by_track = {}
    for event in tracer.events:
        by_track.setdefault(event["tid"], []).append(event["ph"])
    assert by_track == {2: ["B", "E"], 3: ["B", "E"]}
    assert tracer.track_names[2] == "thread-a"


def test_complete_and_instant_events():
    tracer, clock = make_tracer()
    tracer.enable()
    clock["now"] = 100.0
    tracer.complete("malloc", "alloc", 40.0, bytes=64)
    tracer.instant("wrpkru", "mpk", value=3)
    x, i = tracer.events
    assert x["ph"] == "X" and x["ts"] == 40.0 and x["dur"] == 60.0
    assert x["args"] == {"bytes": 64}
    assert i["ph"] == "i" and i["ts"] == 100.0


def test_span_context_manager_closes_on_error():
    tracer, _ = make_tracer()
    tracer.enable()
    with pytest.raises(ValueError):
        with tracer.span("risky", "test"):
            raise ValueError("boom")
    assert [e["ph"] for e in tracer.events] == ["B", "E"]
    assert tracer.open_spans() == []


def test_clear_resets_state():
    tracer, _ = make_tracer()
    tracer.enable()
    tracer.set_track(7, "t")
    tracer.begin("a", "cat")
    tracer.clear()
    assert tracer.events == []
    assert tracer.open_spans() == []
    assert tracer.current_track == HOST_TRACK
    assert SCHED_TRACK in tracer.track_names
