"""Chrome-trace export: schema round-trip on real workload runs."""

import json

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.obs import (
    chrome_trace,
    metrics_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.tracer import SCHED_TRACK

LIBS = ["libc", "netstack", "iperf"]
ISOLATED = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


@pytest.fixture(scope="module")
def traced_run():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=ISOLATED, backend="mpk-shared")
    )
    image.enable_tracing()
    run_iperf(image, 1024, 1 << 17)
    return image


def test_trace_round_trips_and_validates(traced_run, tmp_path):
    path = write_chrome_trace(traced_run.obs.tracer, tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    assert data["traceEvents"], "a traced run must produce events"


def test_trace_covers_every_boundary_edge(traced_run):
    """Every edge in the crossing report shows up as gate spans."""
    data = chrome_trace(traced_run.obs.tracer)
    gate_span_prefixes = {
        event["name"].rsplit(".", 1)[0]
        for event in data["traceEvents"]
        if event.get("cat") == "gate" and event["ph"] in ("B", "X")
    }
    boundary_edges = [
        (caller, callee)
        for caller, callee, kind, _ in traced_run.crossing_report()
        if kind != "direct"
    ]
    assert boundary_edges, "isolated config must have boundary edges"
    for caller, callee in boundary_edges:
        assert f"{caller}->{callee}" in gate_span_prefixes


def test_trace_has_thread_and_scheduler_tracks(traced_run):
    data = chrome_trace(traced_run.obs.tracer)
    names = {
        event["args"]["name"]
        for event in data["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert {"host", "scheduler", "netstack-rx"} <= names
    sched_slices = [
        event
        for event in data["traceEvents"]
        if event.get("tid") == SCHED_TRACK and event["ph"] == "X"
    ]
    assert sched_slices, "scheduler quanta must appear on their own track"
    assert all(event.get("cat") == "sched" for event in sched_slices)


def test_trace_includes_alloc_and_net_spans(traced_run):
    categories = {
        event.get("cat")
        for event in chrome_trace(traced_run.obs.tracer)["traceEvents"]
    }
    assert {"gate", "sched", "alloc", "net"} <= categories


def test_events_sorted_by_timestamp(traced_run):
    events = chrome_trace(traced_run.obs.tracer)["traceEvents"]
    stamps = [event["ts"] for event in events if "ts" in event]
    assert stamps == sorted(stamps)


def test_validator_flags_broken_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": 3}) != []
    bad_phase = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}]}
    assert any("bad phase" in e for e in validate_chrome_trace(bad_phase))
    unbalanced = {
        "traceEvents": [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
        ]
    }
    assert any("unclosed" in e for e in validate_chrome_trace(unbalanced))
    backwards = {
        "traceEvents": [
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1},
        ]
    }
    assert any("backwards" in e for e in validate_chrome_trace(backwards))


def test_tracing_does_not_change_simulated_time():
    """The acceptance criterion: identical simulated results with the
    tracer on and off."""

    def run(traced: bool):
        image = build_image(
            BuildConfig(
                libraries=LIBS, compartments=ISOLATED, backend="mpk-shared"
            )
        )
        if traced:
            image.enable_tracing()
        result = run_iperf(image, 512, 1 << 16)
        return image.clock_ns, result.elapsed_ns, dict(image.machine.cpu.stats)

    assert run(False) == run(True)


def test_metrics_json_export(traced_run, tmp_path):
    path = write_metrics_json(
        traced_run.obs.metrics, tmp_path / "metrics.json", clock_ns=123.0
    )
    data = json.loads(path.read_text())
    assert data["clock_ns"] == 123.0
    assert data["counters"]["gate_crossings"] > 0
    assert metrics_json(traced_run.obs.metrics)["edges"]


def test_killed_thread_spans_auto_close(tmp_path):
    """A thread destroyed while parked in a gate leaves open spans;
    the exporter balances them so the JSON still validates."""
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=ISOLATED, backend="mpk-shared")
    )
    image.enable_tracing()
    run_iperf(image, 1024, 1 << 15)
    # Kill everything without shutdown: the rx thread is parked inside
    # its blocking gate chain.
    image.scheduler.kill_all()
    data = chrome_trace(image.obs.tracer)
    assert validate_chrome_trace(data) == []
    auto = [
        event
        for event in data["traceEvents"]
        if event.get("args", {}).get("auto_closed")
    ]
    if image.obs.tracer.open_spans():  # pragma: no cover - depends on timing
        assert auto


def test_killed_thread_gate_spans_closed_by_gate(tmp_path):
    """Regression: destroying a thread parked in a blocking gate chain
    must close the gate spans at the gate (GeneratorExit path), not
    lean on the exporter's auto-close fallback."""
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=ISOLATED, backend="mpk-shared")
    )
    image.enable_tracing()
    run_iperf(image, 1024, 1 << 15)
    # The rx thread is parked inside netstack->sched blocking gates.
    image.scheduler.kill_all()
    tracer = image.obs.tracer
    assert [
        span for span in tracer.open_spans() if span[2] == "gate"
    ] == [], "gates must end their spans when the generator is closed"
    data = chrome_trace(tracer)
    assert validate_chrome_trace(data) == []
    gate_events = [
        event
        for event in data["traceEvents"]
        if event.get("cat") == "gate" and event["ph"] in ("B", "E")
    ]
    begins = sum(1 for event in gate_events if event["ph"] == "B")
    ends = sum(1 for event in gate_events if event["ph"] == "E")
    assert begins == ends
    assert not any(
        event.get("args", {}).get("auto_closed")
        for event in data["traceEvents"]
        if event.get("cat") == "gate"
    )
    # The crossing counter agrees with the number of gate spans begun.
    crossings = sum(
        count for _, _, kind, count in image.crossing_report() if kind != "direct"
    )
    gate_slices = sum(
        1
        for event in data["traceEvents"]
        if event.get("cat") == "gate" and event["ph"] in ("B", "X")
    )
    assert gate_slices == crossings
