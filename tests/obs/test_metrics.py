"""Metrics registry semantics: counters, gauges, histograms, edges."""

import pytest

from repro import BuildConfig, build_image
from repro.obs.metrics import MetricsRegistry


def test_counter_starts_at_zero_and_accumulates():
    metrics = MetricsRegistry()
    assert metrics.counter("nope") == 0.0
    metrics.inc("hits")
    metrics.inc("hits", 2.5)
    assert metrics.counter("hits") == 3.5
    assert metrics.counters["hits"] == 3.5


def test_gauge_last_value_wins():
    metrics = MetricsRegistry()
    gauge = metrics.gauge("queue.depth")
    gauge.set(3)
    gauge.set(7)
    assert metrics.gauge("queue.depth") is gauge
    assert gauge.value == 7.0


def test_histogram_summary_and_percentiles():
    metrics = MetricsRegistry()
    hist = metrics.histogram("lat")
    for value in (10, 20, 30, 40):
        hist.observe(value)
    assert hist.count == 4
    assert hist.mean == 25.0
    # Nearest-rank: p50 of 4 samples is the 2nd, not the 3rd.
    assert hist.percentile(0.5) == 20.0
    assert hist.percentile(0.99) == 40.0
    summary = hist.summary()
    assert summary["count"] == 4
    assert summary["min"] == 10.0 and summary["max"] == 40.0
    assert summary["p50"] == 20.0 and summary["p99"] == 40.0


def test_empty_histogram_summary():
    assert MetricsRegistry().histogram("empty").summary() == {"count": 0}


def test_edges_key_on_kind_and_report_sorted():
    metrics = MetricsRegistry()
    first = metrics.edge("a", "b", "funccall")
    assert metrics.edge("a", "b", "funccall") is first
    assert metrics.edge("a", "b", "mpk-shared") is not first
    first.crossings = 3
    metrics.edge("b", "c", "funccall").crossings = 9
    report = metrics.edges_report()
    assert [row["crossings"] for row in report] == [9, 3]
    # Unused edges are omitted.
    assert all(row["kind"] != "mpk-shared" for row in report)


def test_crossing_matrix_sums_kinds():
    metrics = MetricsRegistry()
    metrics.edge("a", "b", "funccall").crossings = 2
    metrics.edge("a", "b", "mpk-shared").crossings = 5
    metrics.edge("a", "c", "funccall").crossings = 1
    assert metrics.crossing_matrix() == {"a": {"b": 7, "c": 1}}


def test_edges_report_order_is_deterministic():
    """Same edge totals → same report, whatever the insertion order.

    Profiles hash their edge list, so ties must break on (caller,
    callee, kind), not on registration history."""

    def build(order):
        metrics = MetricsRegistry()
        for caller, callee, kind, count in order:
            metrics.edge(caller, callee, kind).crossings = count
        return metrics

    rows = [
        ("z", "a", "funccall", 5),
        ("a", "z", "funccall", 5),
        ("a", "b", "mpk-shared", 5),
        ("a", "b", "funccall", 5),
        ("m", "n", "funccall", 9),
    ]
    forward = build(rows).edges_report()
    backward = build(list(reversed(rows))).edges_report()
    assert forward == backward
    assert [r["crossings"] for r in forward] == [9, 5, 5, 5, 5]
    # Ties sorted by caller, then callee, then kind.
    assert [(r["caller"], r["callee"], r["kind"]) for r in forward[1:]] == [
        ("a", "b", "funccall"),
        ("a", "b", "mpk-shared"),
        ("a", "z", "funccall"),
        ("z", "a", "funccall"),
    ]


def test_crossing_matrix_order_is_deterministic():
    metrics = MetricsRegistry()
    metrics.edge("z", "y", "funccall").crossings = 1
    metrics.edge("a", "b", "funccall").crossings = 2
    metrics.edge("a", "a2", "funccall").crossings = 3
    matrix = metrics.crossing_matrix()
    assert list(matrix) == ["a", "z"]
    assert list(matrix["a"]) == ["a2", "b"]


def test_snapshot_is_json_ready_and_reset_zeroes():
    import json

    metrics = MetricsRegistry()
    metrics.inc("x")
    metrics.gauge("g").set(4)
    metrics.histogram("h").observe(1.0)
    edge = metrics.edge("a", "b", "funccall")
    edge.crossings = 2
    snapshot = metrics.snapshot()
    json.dumps(snapshot)  # must serialise
    assert snapshot["counters"] == {"x": 1.0}
    assert snapshot["gauges"] == {"g": 4.0}
    assert snapshot["histograms"]["h"]["count"] == 1
    assert snapshot["crossing_matrix"] == {"a": {"b": 2}}
    metrics.reset()
    assert metrics.counter("x") == 0.0
    # Edges keep their identity so gates' references stay live.
    assert metrics.edge("a", "b", "funccall") is edge
    assert edge.crossings == 0


def test_cpu_stats_is_the_registry_counter_table():
    image = build_image(BuildConfig(libraries=["libc"]))
    cpu = image.machine.cpu
    assert cpu.stats is cpu.metrics.counters
    cpu.bump("custom", 2)
    assert cpu.metrics.counter("custom") == 2.0
    cpu.reset_stats()
    assert cpu.metrics.counter("custom") == 0.0


def test_gate_crossings_feed_registry_edges():
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
            backend="mpk-shared",
        )
    )
    from repro.apps import run_iperf

    run_iperf(image, 1024, 1 << 16)
    matrix = image.crossing_matrix()
    assert matrix["iperf"]["netstack"] > 0
    # The registry's totals agree with the gates' own counters.
    for caller, callee, kind, crossings in image.crossing_report():
        edge = image.machine.cpu.metrics.edge(caller, callee, kind)
        assert edge.crossings == crossings
    # gate_crossings counts only real boundary crossings; mpk edges
    # also land in the backend-specific counter.
    stats = image.machine.cpu.stats
    assert stats["gate_crossings"] == stats["mpk_crossings"]


def test_profile_backend_counts_boundary_crossings():
    """The 'none' backend's cross-compartment calls now count as gate
    crossings (unified accounting), while direct in-compartment calls
    do not."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
            backend="none",
        )
    )
    from repro.apps import run_iperf

    run_iperf(image, 1024, 1 << 16)
    stats = image.machine.cpu.stats
    assert stats["gate_crossings"] > 0
    assert stats["direct_calls"] > stats["gate_crossings"]
    flat = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[["netstack", "sched", "alloc", "libc", "iperf"]],
            backend="none",
        )
    )
    run_iperf(flat, 1024, 1 << 16)
    assert flat.machine.cpu.stats.get("gate_crossings", 0) == 0
