"""Shard map: determinism, balance, and minimal movement on change."""

from repro.cluster.shardmap import NSLOTS, ShardMap, slot_of


def test_slot_of_is_deterministic_and_bounded():
    assert slot_of(b"key:001") == slot_of(b"key:001")
    assert slot_of("key:001") == slot_of(b"key:001")  # str auto-encodes
    for index in range(200):
        assert 0 <= slot_of(b"key:%d" % index) < NSLOTS


def test_map_is_deterministic_across_instances():
    left = ShardMap(("s0", "s1", "s2"))
    right = ShardMap(("s0", "s1", "s2"))
    assert left.assignments() == right.assignments()


def test_every_slot_has_an_owner_and_balance_is_reasonable():
    shard_map = ShardMap(("s0", "s1", "s2"))
    assignments = shard_map.assignments()
    assert sorted(assignments) == list(range(NSLOTS))
    counts = shard_map.counts()
    assert set(counts) == {"s0", "s1", "s2"}
    # Virtual nodes smooth the ring: every shard owns a real share
    # and none owns the majority.
    for shard, count in counts.items():
        assert NSLOTS // 10 <= count <= NSLOTS // 2, (shard, counts)


def test_add_moves_only_slots_toward_the_new_shard():
    shard_map = ShardMap(("s0", "s1", "s2"))
    before = shard_map.assignments()
    moved = shard_map.add("s3")
    assert moved  # the new shard took something
    for slot, (old, new) in moved.items():
        assert new == "s3"
        assert old == before[slot]
    # Consistent hashing: far fewer than all slots moved.
    assert len(moved) < NSLOTS // 2
    # Unmoved slots kept their owner.
    for slot, owner in shard_map.assignments().items():
        if slot not in moved:
            assert owner == before[slot]


def test_remove_reassigns_only_the_leaving_shards_slots():
    shard_map = ShardMap(("s0", "s1", "s2"))
    owned = set(shard_map.slots_of("s1"))
    moved = shard_map.remove("s1")
    assert set(moved) == owned
    for slot, (old, new) in moved.items():
        assert old == "s1"
        assert new in ("s0", "s2")


def test_epoch_bumps_on_every_mutation():
    shard_map = ShardMap(("s0",))
    epoch = shard_map.epoch
    shard_map.add("s1")
    assert shard_map.epoch == epoch + 1
    shard_map.remove("s1")
    assert shard_map.epoch == epoch + 2


def test_owner_matches_slot_table():
    shard_map = ShardMap(("s0", "s1", "s2"))
    for index in range(50):
        key = b"key:%03d" % index
        assert shard_map.owner(key) == shard_map.owner_of_slot(slot_of(key))


def test_duplicate_membership_rejected():
    shard_map = ShardMap(("s0",))
    try:
        shard_map.add("s0")
    except ValueError:
        pass
    else:
        raise AssertionError("duplicate add should raise")
    try:
        shard_map.remove("s9")
    except ValueError:
        pass
    else:
        raise AssertionError("unknown remove should raise")
