"""Fabric: link pacing, delivery-time gating, conservative stepping."""

import pytest

from repro.cluster.fabric import Fabric, Link
from repro.cluster.cluster import RedisCluster
from repro.cluster.client import ClusterClient


def test_link_charges_packet_and_byte_costs():
    link = Link(latency_ns=1000.0, byte_ns=1.0, pkt_ns=20.0)
    arrival = link.delay(0.0, 100)
    assert arrival == pytest.approx(20.0 + 100.0 + 1000.0)
    assert link.messages == 1
    assert link.bytes == 100


def test_link_serialises_back_to_back_messages():
    link = Link(latency_ns=0.0, byte_ns=1.0, pkt_ns=10.0)
    first = link.delay(0.0, 10)   # occupies the wire until t=20
    second = link.delay(0.0, 10)  # must queue behind the first
    assert first == pytest.approx(20.0)
    assert second == pytest.approx(40.0)
    # After the wire drains, a later send is not delayed.
    third = link.delay(100.0, 10)
    assert third == pytest.approx(120.0)


def _one_node_cluster():
    cluster = RedisCluster(shards=("s0",), replicate=False, durable=False)
    return cluster, cluster.shards["s0"].primary


def test_delivery_waits_for_arrival_time_on_receiver_clock():
    cluster, node = _one_node_cluster()
    arrival = node.deliver(b"PING\n")
    assert arrival > node.clock_ns  # in flight, not instantly visible
    assert node._rx_source() is None  # NIC sees an idle wire for now
    replies = []
    node.client_sink = lambda name, payload: replies.append(payload)
    cluster.fabric.run(until=lambda: replies)
    # The node's clock had to advance past the arrival to consume it.
    assert node.clock_ns >= arrival
    assert replies == [b"+PONG\n"]


def test_conservative_stepping_runs_min_clock_node_first():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=False, durable=False)
    client = ClusterClient(cluster)
    for index in range(12):
        client.set(b"key:%03d" % index, b"x%d" % index)
    client.drive()
    assert client.stats()["acked"] == 12
    clocks = [node.clock_ns for node in cluster.fabric.alive_nodes()]
    # Both machines did work on their own clocks.
    assert all(clock > 0 for clock in clocks)


def test_fabric_run_is_deterministic():
    def run_once():
        cluster = RedisCluster(
            shards=("s0", "s1"), replicate=False, durable=False
        )
        client = ClusterClient(cluster)
        for index in range(10):
            client.set(b"key:%03d" % index, b"v%d" % index)
        client.drive()
        return [node.clock_ns for node in cluster.fabric.alive_nodes()]

    assert run_once() == run_once()


def test_kill_stops_scheduling_and_fabric_clock_tracks_alive_nodes():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=False, durable=False)
    node = cluster.fabric.node("s0-a")
    cluster.fabric.kill("s0-a")
    assert not node.alive
    assert node not in cluster.fabric.alive_nodes()
    assert cluster.fabric.clock_ns == cluster.fabric.node("s1-a").clock_ns


def test_fabric_run_raises_when_condition_never_holds():
    cluster, _ = _one_node_cluster()
    with pytest.raises(RuntimeError):
        cluster.fabric.run(until=lambda: False, max_rounds=5)
