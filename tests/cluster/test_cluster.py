"""Cluster control plane: routing, replication, failover, rebalancing."""

import pytest

from repro.apps import resp
from repro.cluster.client import ClusterClient, verify_acked
from repro.cluster.cluster import RedisCluster, select_shard_profile
from repro.cluster.shardmap import slot_of


def _load(client, count, prefix=b"key"):
    for index in range(count):
        client.set(b"%s:%03d" % (prefix, index), b"value-%03d" % index)
    client.drive()


def test_keys_land_on_their_owning_shard():
    cluster = RedisCluster(shards=("s0", "s1", "s2"), replicate=False)
    client = ClusterClient(cluster)
    _load(client, 30)
    assert len(client.acked) == 30
    for key, value in client.acked.items():
        owner = cluster.map.owner(key)
        node = cluster.serving_node(owner)
        assert node.image.lib("redis").value_of(key) == value
        # And nowhere else.
        for other in cluster.shards:
            if other != owner:
                other_node = cluster.serving_node(other)
                assert other_node.image.lib("redis").value_of(key) is None


def test_wrong_shard_answers_moved_and_client_chases_it():
    cluster = RedisCluster(shards=("s0", "s1", "s2"), replicate=False)
    client = ClusterClient(cluster)
    _load(client, 12)
    key = next(iter(sorted(client.acked)))
    owner = cluster.map.owner(key)
    wrong = next(name for name in sorted(cluster.shards) if name != owner)
    client.get(key)
    client.pending[-1].forced_shard = wrong  # deliberately stale route
    client.drive()
    assert client.moved == 1
    assert client.stale_reads == 0  # the chase converged on the value


def test_moved_reply_wire_format():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=False)
    key = b"probe"
    owner = cluster.map.owner(key)
    wrong = next(name for name in sorted(cluster.shards) if name != owner)
    node = cluster.serving_node(wrong)
    replies = []
    node.client_sink = lambda name, payload: replies.append(payload)
    node.deliver(resp.encode_command(b"GET", key))
    cluster.fabric.run(until=lambda: replies)
    expected = b"-MOVED %d %s\r\n" % (slot_of(key), owner.encode())
    assert replies == [expected]


def test_replication_applies_journal_records_on_the_follower():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=True)
    client = ClusterClient(cluster)
    _load(client, 16)
    for name, shard in cluster.shards.items():
        primary_app = shard.primary.image.lib("redis")
        own_keys = [k for k in client.acked if cluster.map.owner(k) == name]
        stats = shard.channel.stats()
        assert stats["applied"] == len(own_keys)
        assert stats["retries"] == 0
        # The follower's kv journal holds every replicated record.
        follower_keys = shard.follower.image.call("kv", "kv_keys")
        assert set(own_keys) <= set(follower_keys)
        assert primary_app.sets == len(own_keys)
    lag = cluster.replication_lag()
    assert lag["samples"] == 16
    assert lag["mean_ns"] > 0


def test_replication_lag_includes_link_round_trip():
    cluster = RedisCluster(shards=("s0",), replicate=True, latency_ns=50_000.0)
    client = ClusterClient(cluster)
    _load(client, 4)
    lag = cluster.replication_lag()
    # Doorbell out + ack back: at least two propagation delays.
    assert lag["mean_ns"] >= 2 * 50_000.0


def test_failover_preserves_every_acked_write():
    cluster = RedisCluster(shards=("s0", "s1", "s2"), replicate=True)
    client = ClusterClient(cluster)
    _load(client, 24)
    victim = "s1"
    cluster.kill_primary(victim)
    report = cluster.promote(victim, recover=True)
    assert report["restored"] >= 0
    audit = verify_acked(cluster, client)
    assert audit["ok"], audit
    assert cluster.shards[victim].serving.name == "s1-b"
    assert cluster.shards[victim].failover_ns is not None
    assert cluster.shards[victim].failover_ns > 0


def test_fenced_old_primary_redirects_everything():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=True)
    client = ClusterClient(cluster)
    _load(client, 8)
    victim = "s0"
    dead = cluster.kill_primary(victim)
    cluster.promote(victim, recover=True)
    # The old primary comes back from the dead (split-brain attempt):
    # its router must MOVED every command instead of serving.
    dead.alive = True
    key = next(
        k for k in sorted(client.acked) if cluster.map.owner(k) == victim
    )
    replies = []
    dead.client_sink = lambda name, payload: replies.append(payload)
    dead.deliver(resp.encode_command(b"SET", key, b"split-brain"))
    cluster.fabric.run(until=lambda: replies)
    assert replies[0].startswith(b"-MOVED ")
    # The authoritative copy is untouched.
    serving = cluster.shards[victim].serving
    assert serving.image.lib("redis").value_of(key) == client.acked[key]


def test_add_shard_migrates_moved_keys_over_the_wire():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=False)
    client = ClusterClient(cluster)
    _load(client, 24)
    before = {key: cluster.map.owner(key) for key in client.acked}
    report = cluster.add_shard("s2")
    assert report["epoch"] == cluster.map.epoch
    moved_keys = [
        key for key in client.acked if cluster.map.owner(key) != before[key]
    ]
    assert report["migrated_keys"] == len(moved_keys)
    if moved_keys:
        assert report["migrated_bytes"] > 0
        assert report["migration_ns"] > 0
    # Every moved key is readable on its new owner.
    new_node = cluster.serving_node("s2")
    for key in moved_keys:
        if cluster.map.owner(key) == "s2":
            assert (
                new_node.image.lib("redis").value_of(key)
                == client.acked[key]
            )
    audit = verify_acked(cluster, client)
    assert audit["ok"], audit


def test_select_shard_profile_honours_requirements():
    groups, backend = select_shard_profile(
        ["isolated:netstack"], "mpk-shared"
    )
    assert ["netstack"] in groups
    assert backend == "mpk-shared"
    assert len(groups) > 1


def test_select_shard_profile_downgrades_backend_for_flat_pick():
    groups, backend = select_shard_profile([], "mpk-shared")
    assert len(groups) == 1
    assert backend == "none"


def test_select_shard_profile_rejects_impossible_requirements():
    from repro.core.errors import FlexOSError

    with pytest.raises((ValueError, FlexOSError)):
        RedisCluster(
            shards=("s0",),
            profile_requirements=["isolated:no-such-lib"],
        )


def test_cluster_with_explored_profile_serves_traffic():
    cluster = RedisCluster(
        shards=("s0", "s1"),
        backend="mpk-shared",
        replicate=False,
        profile_requirements=["isolated:netstack", "write-protected:kv"],
    )
    assert ["netstack"] in cluster.compartments
    client = ClusterClient(cluster)
    _load(client, 6)
    assert len(client.acked) == 6


def test_replication_requires_durability():
    with pytest.raises(ValueError):
        RedisCluster(shards=("s0",), durable=False, replicate=True)
