"""Report tooling over multi-machine runs (telemetry aggregation)."""

from repro.cluster.client import ClusterClient
from repro.cluster.cluster import RedisCluster
from repro.tools.report import machine_telemetry


def _loaded_cluster():
    cluster = RedisCluster(shards=("s0", "s1"), replicate=True)
    client = ClusterClient(cluster)
    for index in range(10):
        client.set(b"key:%03d" % index, b"v%d" % index)
    client.drive()
    return cluster


def test_machine_telemetry_sums_across_all_machines():
    cluster = _loaded_cluster()
    images = cluster.images()
    assert len(images) == 4  # 2 primaries + 2 followers
    aggregated = machine_telemetry(images)
    assert aggregated["machines"] == 4
    singles = [image.machine.fastpath_stats() for image in images]
    for key in ("tlb_hits", "tlb_misses", "tlb_invalidations"):
        assert aggregated[key] == sum(stats[key] for stats in singles)
    assert aggregated["gateplan"]["plan_hits"] == sum(
        stats["gateplan"]["plan_hits"] for stats in singles
    )
    # Multiple machines did real work: a singleton snapshot would
    # undercount (this is the regression the aggregation fixes).
    busiest = max(stats["tlb_hits"] for stats in singles)
    assert aggregated["tlb_hits"] > busiest
    assert aggregated["enabled"] == all(s["enabled"] for s in singles)
    lookups = aggregated["tlb_hits"] + aggregated["tlb_misses"]
    assert aggregated["tlb_hit_rate"] == aggregated["tlb_hits"] / lookups


def test_machine_telemetry_single_machine_keeps_report_shape():
    from repro import BuildConfig, build_image

    image = build_image(BuildConfig(libraries=["libc"]))
    stats = machine_telemetry([image])
    assert stats["machines"] == 1
    for key in (
        "enabled",
        "tlb_hits",
        "tlb_hit_rate",
        "gateplan",
        "wheel_cascades",
        "completion_delivery",
    ):
        assert key in stats
