"""Cluster campaign: verdicts, determinism, retry discipline."""

import pytest

from repro.cluster.campaign import (
    EXPECTED,
    SEVERITY,
    run_cluster_campaign,
    run_cluster_cell,
)
from repro.cluster.cluster import RedisCluster
from repro.cluster.client import ClusterClient
from repro.cluster.replication import MAX_RETRIES
from repro.resilience.injector import arm
from repro.resilience.plan import InjectionPlan

SMALL = dict(sets=12, shards=("s0", "s1"))


def test_primary_kill_keeps_every_acked_write():
    cell = run_cluster_cell("none", "primary-kill", seed=3, **SMALL)
    assert cell["verdict"] == "no-acked-write-lost"
    assert cell["acked"] == 12
    assert cell["audit"]["ok"]
    assert cell["audit"]["checked"] == 12


def test_repl_crash_primary_is_injected_and_survives():
    cell = run_cluster_cell("none", "repl-crash-primary", seed=3, **SMALL)
    assert cell["verdict"] == "no-acked-write-lost"
    assert cell["injected"] == 1
    assert cell["events"][0]["site"] == "repl-crash-primary"
    assert cell["events"][0]["outcome"] == "raised"


def test_repl_drop_is_absorbed_by_retries():
    cell = run_cluster_cell("none", "repl-drop", seed=3, **SMALL)
    assert cell["verdict"] == "no-acked-write-lost"
    assert cell["injected"] == 2
    assert cell["repl_retries"] == 2


def test_stale_read_window_observed_then_closed():
    cell = run_cluster_cell("none", "stale-read", seed=3, **SMALL)
    assert cell["verdict"] == "stale-read-window"
    assert cell["stale_window_reads"] > 0
    assert cell["audit"]["ok"]  # closed after journal replay


def test_shard_join_converges_via_moved():
    cell = run_cluster_cell("none", "shard-join", seed=3, **SMALL)
    assert cell["verdict"] == "rebalance-converged"
    assert cell["rebalance"]["migrated_keys"] >= 0
    assert cell["audit"]["ok"]


def test_cells_are_deterministic():
    left = run_cluster_cell("none", "primary-kill", seed=7, **SMALL)
    right = run_cluster_cell("none", "primary-kill", seed=7, **SMALL)
    for field in ("verdict", "acked", "victim", "client", "audit"):
        assert left[field] == right[field]


def test_campaign_matrix_keeps_worst_verdict():
    result = run_cluster_campaign(
        backends=("none",),
        sites=("primary-kill",),
        schedules=2,
        seed=1,
        sets=12,
        shards=("s0", "s1"),
    )
    assert len(result.cells) == 2
    matrix = result.matrix()
    assert matrix["primary-kill"]["none"] == "no-acked-write-lost"
    payload = result.to_dict()
    assert payload["matrix"] == matrix


def test_severity_and_expected_cover_all_verdicts():
    assert set(EXPECTED.values()) <= set(SEVERITY)
    assert SEVERITY["acked-write-lost"] > SEVERITY["stale-read-window"]
    assert SEVERITY["stale-read-window"] > SEVERITY["no-acked-write-lost"]


def test_unknown_site_rejected():
    with pytest.raises(ValueError):
        run_cluster_cell("none", "no-such-site", seed=0)


def test_repl_drop_exhausting_retry_budget_surfaces_timeout():
    from repro.cluster.replication import ReplicationTimeout

    cluster = RedisCluster(shards=("s0",), replicate=True)
    client = ClusterClient(cluster)
    plan = InjectionPlan(0).drop_repl_op(nth=1, count=MAX_RETRIES + 2)
    injector = arm(cluster.shards["s0"].primary.image, plan)
    client.set(b"alpha", b"1")
    with pytest.raises(ReplicationTimeout):
        client.drive()
    injector.detach()
    # The write was never acked, so losing it is not an acked loss.
    assert client.acked == {}
