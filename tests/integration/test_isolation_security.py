"""Fault injection: isolation and hardening guarantees actually hold.

These tests play the adversary: a hijacked component attempts the
memory accesses and control transfers its FlexOS spec says it might
attempt in adversarial operation, and the selected mechanism must stop
it — MPK pkeys, EPT non-mapping, ASAN/DFI/CFI checks — while the same
attack *succeeds* in the no-isolation baseline (that's the trade-off
the whole paper is about).
"""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import PageFault, ProtectionFault, SHViolation

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


def build(backend, hardening=None):
    return build_image(
        BuildConfig(
            libraries=LIBS,
            compartments=GROUPS,
            backend=backend,
            hardening=hardening or {},
        )
    )


def hijacked_netstack_writes(image, victim_addr):
    """Simulate a hijacked netstack storing to a foreign address."""
    context = image.compartment_of("netstack").make_context("hijacked")
    machine = image.machine
    machine.cpu.push_context(context)
    try:
        machine.store(victim_addr, b"pwned---")
    finally:
        machine.cpu.pop_context()


def scheduler_secret(image):
    """A private scheduler-compartment allocation holding 'secrets'."""
    compartment = image.compartment_of("sched")
    addr = compartment.alloc_region(64)
    machine = image.machine
    machine.cpu.push_context(compartment.make_context("sched"))
    machine.store(addr, b"PKRU table")
    machine.cpu.pop_context()
    return addr


def test_no_isolation_attack_succeeds():
    """Baseline: nothing stops a wild write (maximum performance,
    no protection — the SASOS corner of Figure 1)."""
    image = build("none")
    victim = scheduler_secret(image)
    hijacked_netstack_writes(image, victim)  # no fault
    machine = image.machine
    space = image.compartment_of("sched").address_space
    assert machine.dma_read(space, victim, 8) == b"pwned---"


@pytest.mark.parametrize("backend", ["mpk-shared", "mpk-switched"])
def test_mpk_blocks_cross_compartment_write(backend):
    image = build(backend)
    victim = scheduler_secret(image)
    with pytest.raises(ProtectionFault) as info:
        hijacked_netstack_writes(image, victim)
    assert info.value.pkey == image.compartment_of("sched").pkey
    # The secret is intact.
    space = image.compartment_of("sched").address_space
    assert image.machine.dma_read(space, victim, 10) == b"PKRU table"


@pytest.mark.parametrize("backend", ["mpk-shared", "mpk-switched"])
def test_mpk_blocks_cross_compartment_read(backend):
    image = build(backend)
    victim = scheduler_secret(image)
    context = image.compartment_of("netstack").make_context("snooper")
    image.machine.cpu.push_context(context)
    try:
        with pytest.raises(ProtectionFault):
            image.machine.load(victim, 8)
    finally:
        image.machine.cpu.pop_context()


def test_mpk_allows_shared_area_writes():
    image = build("mpk-shared")
    shared = image.call("alloc", "malloc_shared", 64)
    hijacked_netstack_writes(image, shared)  # legal: shared domain
    space = image.compartment_of("netstack").address_space
    assert image.machine.dma_read(space, shared, 8) == b"pwned---"


def test_vm_backend_foreign_memory_unreachable():
    """Under EPT the victim's memory cannot be named at all: the same
    virtual address either is unmapped in the attacker's VM (page
    fault) or refers to the attacker's *own* private page — either way
    the victim's bytes are untouched."""
    image = build("vm-rpc")
    victim = scheduler_secret(image)
    try:
        hijacked_netstack_writes(image, victim)
    except PageFault:
        pass  # the address is simply not mapped in the attacker's VM
    sched_space = image.compartment_of("sched").address_space
    assert image.machine.dma_read(sched_space, victim, 10) == b"PKRU table"


def test_shared_vs_switched_stack_exposure():
    """The ERIM-vs-HODOR trade-off: under shared stacks any compartment
    can write any thread's stack; switched stacks close that channel."""
    shared_image = build("mpk-shared")
    switched_image = build("mpk-switched")
    for image, expect_fault in ((shared_image, False), (switched_image, True)):
        # A thread homed in the rest compartment.
        thread = image.scheduler.spawn(
            "victim", lambda: iter(()), image.compartment_of("libc")
        )
        if expect_fault:
            with pytest.raises(ProtectionFault):
                hijacked_netstack_writes(image, thread.stack_base)
        else:
            hijacked_netstack_writes(image, thread.stack_base)


def test_asan_contains_netstack_heap_overflow():
    """SH instead of hardware isolation: same attack, caught by ASAN."""
    image = build("none", hardening={"netstack": ("asan",)})
    netstack_comp = image.compartment_of("netstack")
    buffer_addr = netstack_comp.allocator.malloc(64)
    context = netstack_comp.make_context("overflowing")
    image.machine.cpu.push_context(context)
    try:
        image.machine.store(buffer_addr, b"A" * 64)  # in bounds: fine
        with pytest.raises(SHViolation, match="asan"):
            image.machine.store(buffer_addr, b"A" * 80)  # overflow
    finally:
        image.machine.cpu.pop_context()


def test_dfi_contains_wild_write_without_mpk():
    image = build("none", hardening={"netstack": ("dfi",)})
    victim = scheduler_secret(image)
    with pytest.raises(SHViolation, match="dfi"):
        hijacked_netstack_writes(image, victim)


def test_cfi_stops_rogue_control_transfer():
    image = build("none", hardening={"netstack": ("cfi",)})
    netstack = image.lib("netstack")
    context = image.compartment_of("netstack").make_context("rogue")
    image.machine.cpu.push_context(context)
    try:
        # sched::thread_rm is not in the netstack's analysed call graph.
        with pytest.raises(SHViolation, match="cfi"):
            netstack.stub("sched").call("thread_rm", 1)
    finally:
        image.machine.cpu.pop_context()


def test_gates_only_expose_declared_entry_points():
    """'Code execution starts only at well-defined entry points.'"""
    from repro.machine.faults import GateError

    image = build("mpk-shared")
    iperf = image.lib("iperf")
    context = image.compartment_of("iperf").make_context("app")
    image.machine.cpu.push_context(context)
    try:
        with pytest.raises(GateError):
            iperf.stub("netstack").call("_mbuf_get")
        with pytest.raises(GateError):
            iperf.stub("sched").call("run")
    finally:
        image.machine.cpu.pop_context()


def test_workload_is_unaffected_by_isolation_choice():
    """Functional equivalence across every backend: identical bytes
    delivered, identical application results — only time differs."""
    from repro.apps import run_iperf

    checksums = set()
    for backend in ("none", "mpk-shared", "mpk-switched", "vm-rpc"):
        image = build(backend)
        result = run_iperf(image, 1024, 100_000)
        app = image.lib("iperf")
        checksums.add((app.received, app.done))
    assert checksums == {(100_000, True)}
