"""Several applications in one image, sharing the substrate.

A FlexOS image is a whole appliance: this exercises Redis, httpd, and
iperf coexisting on one network stack with distinct trust domains, plus
the socket lifecycle under that load.
"""

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    ClosedLoopSource,
    make_get_payloads,
    make_set_payloads,
    populate_files,
    run_redis_phase,
    start_httpd,
    start_redis,
)
from repro.libos.net.packet import build_packet
from repro.machine.faults import GateError

LIBS = ["libc", "netstack", "vfs", "redis", "httpd", "iperf"]
GROUPS = [
    ["netstack"],
    ["vfs"],
    ["sched", "alloc", "libc", "redis", "httpd", "iperf"],
]


@pytest.fixture
def image():
    img = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="mpk-shared")
    )
    populate_files(img, {"/page": b"served-by-httpd"})
    return img


def test_redis_and_httpd_share_one_stack(image):
    start_redis(image)
    start_httpd(image)
    # Interleave the two request streams through one NIC.
    redis_src = ClosedLoopSource(
        image.lib("redis").PORT,
        make_set_payloads(10, 16, keyspace=4) + make_get_payloads(10, 4),
        window=2,
    )
    http_src = ClosedLoopSource(
        image.lib("httpd").PORT, [b"GET /page\n"] * 10, window=2
    )
    turn = [0]

    def interleaved():
        for _ in range(2):
            source = (redis_src, http_src)[turn[0] % 2]
            turn[0] += 1
            packet = source.source()
            if packet is not None:
                return packet
        return None

    netstack = image.lib("netstack")
    netstack.nic.rx_source = interleaved
    netstack.nic.tx_sink = lambda frame: (
        redis_src.sink(frame)
        if _dst_is(frame, image.lib("redis").PORT)
        else http_src.sink(frame)
    )
    image.run(
        until=lambda: redis_src.done and http_src.done, max_switches=200_000
    )
    assert redis_src.done and http_src.done
    assert image.call("redis", "redis_stats")["gets"] == 10
    assert image.call("httpd", "httpd_stats")["hits"] == 10
    assert image.lib("redis").value_of(b"key0") == b"v" * 16


def _dst_is(frame: bytes, port: int) -> bool:
    from repro.libos.net.packet import unpack_header

    return unpack_header(frame).src_port == port


def test_iperf_after_redis_in_same_image(image):
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(8, 8, keyspace=8), window=2,
        expect_prefix=b"+OK",
    )
    from repro.apps import run_iperf

    result = run_iperf(image, 1024, 1 << 16)
    assert result.throughput_mbps > 0
    # Redis state survives the iperf run.
    assert image.call("redis", "dbsize") == 8


def test_socket_close_releases_port(image):
    fd = image.call("netstack", "listen", 9999)
    assert image.call("netstack", "is_listening", 9999)
    image.call("netstack", "close", fd)
    assert not image.call("netstack", "is_listening", 9999)
    # The port can be rebound...
    again = image.call("netstack", "listen", 9999)
    assert again != fd
    # ...and the old fd is dead.
    with pytest.raises(GateError):
        image.call("netstack", "close", fd)


def test_socket_close_recycles_buffered_mbufs(image):
    netstack = image.lib("netstack")
    fd = image.call("netstack", "listen", 9998)
    queue = [build_packet(9998, b"x" * 500) for _ in range(4)]
    netstack.nic.rx_source = lambda: queue.pop(0) if queue else None
    context = image.compartment_of("netstack").make_context("drain")
    image.machine.cpu.push_context(context)
    try:
        for _ in range(50):
            image.machine.cpu.charge(2000)
            netstack.rx_process(16)
            if not queue and netstack.nic.rx_pending == 0:
                break
    finally:
        image.machine.cpu.pop_context()
    cache_before = len(netstack._mbuf_cache)
    image.call("netstack", "close", fd)
    assert len(netstack._mbuf_cache) == cache_before + 4
