"""Fast end-to-end sanity checks of the experiment machinery.

The full sweeps live in benchmarks/; these integration tests pin the
*relationships* the paper reports, at reduced scale, so a regression in
any subsystem shows up in the ordinary test run.
"""

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_iperf,
    run_redis_phase,
    start_redis,
)

IPERF_LIBS = ["libc", "netstack", "iperf"]
REDIS_LIBS = ["libc", "netstack", "redis"]
FLAT = [["netstack", "sched", "alloc", "libc", "iperf"]]
SPLIT = [["netstack"], ["sched", "alloc", "libc", "iperf"]]
TOTAL = 1 << 17


def iperf_mbps(backend, groups, buffer_size=256, **kw):
    image = build_image(
        BuildConfig(
            libraries=IPERF_LIBS, compartments=groups, backend=backend, **kw
        )
    )
    return run_iperf(image, buffer_size, TOTAL).throughput_mbps


def redis_mreq(backend, groups, **kw):
    image = build_image(
        BuildConfig(
            libraries=REDIS_LIBS, compartments=groups, backend=backend, **kw
        )
    )
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(16, 50, keyspace=16), expect_prefix=b"+OK"
    )
    return run_redis_phase(
        image, make_get_payloads(100, 16), expect_prefix=b"$"
    ).mreq_s


def test_isolation_has_a_price_small_buffers():
    baseline = iperf_mbps("none", FLAT)
    shared = iperf_mbps("mpk-shared", SPLIT)
    switched = iperf_mbps("mpk-switched", SPLIT)
    vm = iperf_mbps("vm-rpc", SPLIT)
    assert baseline > shared > switched > vm


def test_isolation_price_vanishes_at_line_rate():
    baseline = iperf_mbps("none", FLAT, buffer_size=65536)
    shared = iperf_mbps("mpk-shared", SPLIT, buffer_size=65536)
    assert shared / baseline > 0.95


def test_sh_costs_concentrate_where_memory_ops_are():
    groups = [["netstack"], ["sched"], ["libc"], ["alloc", "iperf"]]
    suite = ("asan", "ubsan", "stackprotector", "cfi")

    def measure(hardened):
        return iperf_mbps(
            "none",
            groups,
            buffer_size=128,
            hardening={lib: suite for lib in hardened},
        )

    base = measure([])
    assert base / measure(["sched"]) < 1.03
    assert base / measure(["netstack"]) < 1.2
    assert base / measure(["libc"]) > 1.8


def test_redis_compartment_ladder():
    base = redis_mreq("none", [["netstack", "sched", "alloc", "libc", "redis"]])
    nw_only = redis_mreq(
        "mpk-shared", [["netstack"], ["sched", "alloc", "libc", "redis"]]
    )
    nw_sched = redis_mreq(
        "mpk-shared", [["netstack"], ["sched"], ["alloc", "libc", "redis"]]
    )
    assert base > nw_only > nw_sched


def test_switched_stacks_cost_more_than_shared():
    groups = [["netstack"], ["sched"], ["alloc", "libc", "redis"]]
    shared = redis_mreq("mpk-shared", groups)
    switched = redis_mreq("mpk-switched", groups)
    assert shared / switched > 1.3


def test_verified_scheduler_cheap_end_to_end():
    groups = [["netstack"], ["sched", "alloc", "libc", "redis"]]
    coop = redis_mreq("none", groups)
    verified = redis_mreq("none", groups, scheduler="verified")
    assert coop / verified < 1.15


def test_global_allocator_amplifies_sh_cost():
    groups = [["netstack"], ["sched", "alloc", "libc", "redis"]]
    suite = ("asan", "ubsan", "stackprotector", "cfi")
    local = redis_mreq("none", groups, hardening={"netstack": suite})
    global_alloc = redis_mreq(
        "none",
        groups,
        hardening={"netstack": suite},
        allocator_policy="global",
    )
    assert local > global_alloc


def test_simulated_clock_is_deterministic():
    values = {iperf_mbps("mpk-shared", SPLIT) for _ in range(3)}
    assert len(values) == 1
