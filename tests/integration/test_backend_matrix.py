"""Cross-backend matrix: every app behaves identically on every backend.

The central FlexOS claim: the isolation strategy is a deployment knob
with zero functional impact.  These tests run Redis and latency-tracked
closed loops across all five backends (plus guards) and compare results
bit-for-bit; only simulated time may differ.
"""

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    make_get_payloads,
    make_set_payloads,
    run_redis_phase,
    start_redis,
)

BACKENDS = ["none", "mpk-shared", "mpk-switched", "cheri", "vm-rpc"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "redis"]]


def redis_image(backend, **kw):
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=GROUPS,
            backend=backend,
            **kw,
        )
    )


def drive(image):
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(24, 40, keyspace=8), window=4,
        expect_prefix=b"+OK",
    )
    result = run_redis_phase(
        image, make_get_payloads(48, 8), window=4, expect_prefix=b"$"
    )
    app = image.lib("redis")
    values = tuple(app.value_of(b"key%d" % i) for i in range(8))
    return values, image.call("redis", "redis_stats"), result


@pytest.mark.parametrize("backend", BACKENDS)
def test_redis_functionally_identical(backend):
    values, stats, result = drive(redis_image(backend))
    assert values == (b"v" * 40,) * 8
    assert stats["sets"] == 24
    assert stats["gets"] == 48
    assert stats["misses"] == 0
    assert stats["errors"] == 0
    assert result.requests == 48


def test_latency_ordering_across_backends():
    """Isolation strength shows up in per-request latency, not results."""
    means = {}
    for backend in ("none", "cheri", "mpk-shared", "mpk-switched", "vm-rpc"):
        _, _, result = drive(redis_image(backend))
        assert len(result.latencies_ns) == 48
        means[backend] = result.mean_latency_ns
        assert result.latency_percentile(0.5) <= result.latency_percentile(0.99)
    assert (
        means["none"]
        < means["cheri"]
        < means["mpk-shared"]
        < means["mpk-switched"]
        < means["vm-rpc"]
    )


def test_guards_compose_with_every_isolating_backend():
    for backend in ("mpk-shared", "cheri", "vm-rpc"):
        values, stats, _ = drive(redis_image(backend, api_guards=True))
        assert values == (b"v" * 40,) * 8
        assert stats["errors"] == 0


def test_verified_scheduler_composes_with_every_backend():
    for backend in BACKENDS:
        values, stats, _ = drive(redis_image(backend, scheduler="verified"))
        assert values == (b"v" * 40,) * 8
        assert stats["errors"] == 0


def test_hardening_composes_with_isolation():
    values, stats, _ = drive(
        redis_image("mpk-shared", hardening={"netstack": ("asan", "cfi")})
    )
    assert values == (b"v" * 40,) * 8
    assert stats["errors"] == 0
