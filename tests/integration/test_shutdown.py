"""Graceful image shutdown and thread teardown."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf, start_redis
from repro.libos.sched.base import YIELD, ThreadState, WaitQueue


def test_kill_thread_unwinds_parked_generator():
    image = build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )
    libc = image.lib("libc")
    sem = image.call("libc", "sem_new", 0)
    cleanup = []

    def body():
        try:
            yield from libc.sem_p(sem)
        finally:
            cleanup.append("unwound")

    thread = image.spawn("parked", body, libc)
    image.run(max_switches=10)
    assert thread.state is ThreadState.BLOCKED
    image.scheduler.kill_thread(thread)
    assert cleanup == ["unwound"]
    assert thread.done
    assert image.call("libc", "sem_waiters", sem) == 0


def test_kill_thread_in_cross_compartment_chain():
    """Teardown through a gate chain restores nothing it shouldn't."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "mq"],
            compartments=[["mq"], ["sched", "alloc", "libc"]],
            backend="mpk-shared",
        )
    )
    qid = image.call("mq", "q_new", 1)
    libc = image.lib("libc")

    def body():
        stub = libc.stub("mq")
        yield from stub.call_gen("q_pop", qid)  # parks inside mq's domain

    thread = image.spawn("consumer", body, libc)
    image.run(max_switches=10)
    depth_before = image.machine.cpu.context_depth
    image.scheduler.kill_thread(thread)
    assert image.machine.cpu.context_depth == depth_before
    assert thread.done


def test_kill_all_counts(image_factory=None):
    image = build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )
    libc = image.lib("libc")

    def spinner():
        while True:
            yield YIELD

    for index in range(3):
        image.spawn(f"s{index}", spinner, libc)
    image.run(max_switches=7)
    assert image.scheduler.kill_all() == 3
    assert image.run() == 0


def test_kill_done_thread_is_noop():
    image = build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )

    def body():
        yield YIELD

    thread = image.spawn("t", body, image.lib("libc"))
    image.run()
    assert thread.done
    image.scheduler.kill_thread(thread)  # no-op, no error


def test_image_shutdown_stops_everything():
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "redis"]],
            backend="mpk-shared",
        )
    )
    start_redis(image)
    image.shutdown()
    assert image.scheduler.threads == {}
    assert image.scheduler.runnable == 0
    stats = image.call("netstack", "net_stats")
    assert stats["open_sockets"] == 1  # socket table survives teardown


def test_shutdown_after_iperf_run():
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
            backend="vm-rpc",
        )
    )
    run_iperf(image, 1024, 1 << 16)
    image.shutdown()
    assert image.scheduler.threads == {}
