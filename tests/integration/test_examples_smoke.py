"""Smoke tests: the bundled examples stay runnable.

Only the two fastest examples run here (the full set is exercised
manually / in CI-style runs); each must exit cleanly and print its
landmark lines.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "can_share: False" in out
    assert "attack stopped by MPK" in out
    assert "unsafe_c[asan+cfi]" in out
    assert "Mb/s simulated" in out


def test_custom_library_example():
    out = run_example("custom_library.py")
    assert "cache_get -> b'cached-value'" in out
    assert "caught: asan:" in out


def test_durable_redis_example():
    out = run_example("durable_redis.py")
    assert "journaled 3 writes" in out
    assert "every flushed write survived" in out
    assert "verdict=recovered-state" in out


def test_all_examples_exist_and_have_docstrings():
    expected = {
        "quickstart.py",
        "iperf_exploration.py",
        "redis_tradeoffs.py",
        "custom_library.py",
        "boundary_mechanisms.py",
    }
    found = {path.name for path in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        source = (EXAMPLES / name).read_text()
        assert source.lstrip().startswith(('"""', "#!"))
        assert "Run:" in source
