"""Per-edge crossing accounting: the diagnosis tool behind Fig. 5."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import make_get_payloads, make_set_payloads, run_redis_phase, start_redis


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[
                ["netstack"],
                ["sched"],
                ["alloc", "libc", "redis"],
            ],
            backend="mpk-shared",
        )
    )


def test_report_empty_before_traffic():
    image = build_image(
        BuildConfig(
            libraries=["libc"],
            compartments=[["sched", "alloc", "libc"]],
            backend="none",
        )
    )
    # Boot makes a few calls (stub resolution is lazy, sem creation at
    # listen time only), so the report may be empty or tiny — but never
    # contains unused edges.
    for _, _, _, crossings in image.crossing_report():
        assert crossings > 0


def test_report_identifies_hot_edges(image):
    start_redis(image)
    run_redis_phase(
        image, make_set_payloads(32, 32, keyspace=16), window=4,
        expect_prefix=b"+OK",
    )
    run_redis_phase(
        image, make_get_payloads(100, 16), window=4, expect_prefix=b"$"
    )
    report = image.crossing_report()
    assert report == sorted(report, key=lambda row: -row[3])
    edges = {(caller, callee): (kind, n) for caller, callee, kind, n in report}
    # The Fig. 5 chain is visible: netstack signals through LibC, LibC
    # wakes through the scheduler, redis drives the netstack.
    assert ("netstack", "libc") in edges
    assert ("libc", "sched") in edges
    assert ("redis", "netstack") in edges
    # Cross-compartment edges carry the MPK gate kind; intra ones don't.
    kind, _ = edges[("netstack", "libc")]
    assert kind == "mpk-shared"
    if ("redis", "libc") in edges:
        assert edges[("redis", "libc")][0] == "direct"
    # Semaphore signalling dominates: the netstack→libc edge sees at
    # least one crossing per request packet.
    assert edges[("netstack", "libc")][1] >= 132


def test_report_unwraps_guards():
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
            backend="mpk-shared",
            api_guards=True,
        )
    )
    from repro.apps import run_iperf

    run_iperf(image, 1024, 1 << 16)
    kinds = {kind for _, _, kind, _ in image.crossing_report()}
    assert "mpk-shared" in kinds
    assert "guarded" not in kinds  # report shows the underlying gate
