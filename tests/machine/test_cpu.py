"""Unit tests for the CPU context stack, clock, and counters."""

import pytest

from repro.machine.address_space import AddressSpace
from repro.machine.cpu import CPU, Context, DomainProfile
from repro.machine.cycles import CostModel
from repro.machine.memory import PAGE_SIZE, PhysicalMemory


@pytest.fixture
def space():
    return AddressSpace("cpu-test", PhysicalMemory(4 * PAGE_SIZE))


def test_no_context_raises():
    cpu = CPU()
    with pytest.raises(RuntimeError):
        _ = cpu.current
    assert not cpu.has_context


def test_context_stack_discipline(space):
    cpu = CPU()
    outer = Context(space, label="outer")
    inner = Context(space, label="inner")
    cpu.push_context(outer)
    cpu.push_context(inner)
    assert cpu.current is inner
    assert cpu.context_depth == 2
    assert cpu.pop_context() is inner
    assert cpu.current is outer
    cpu.pop_context()
    with pytest.raises(RuntimeError):
        cpu.pop_context()


def test_charge_advances_clock():
    cpu = CPU()
    cpu.charge(10.5)
    cpu.charge(4.5)
    assert cpu.clock_ns == 15.0


def test_charging_can_be_disabled():
    cpu = CPU()
    cpu.charging = False
    cpu.charge(100.0)
    assert cpu.clock_ns == 0.0
    cpu.charging = True
    cpu.charge(1.0)
    assert cpu.clock_ns == 1.0


def test_counters_and_snapshot():
    cpu = CPU()
    cpu.bump("loads")
    cpu.bump("loads")
    cpu.bump("bytes", 64)
    snap = cpu.snapshot()
    assert snap["loads"] == 2
    assert snap["bytes"] == 64
    assert "clock_ns" in snap
    cpu.reset_stats()
    assert cpu.stats == {}


def test_custom_cost_model():
    model = CostModel(mem_op_ns=99.0)
    cpu = CPU(model)
    assert cpu.cost.mem_op_ns == 99.0


def test_cost_model_scaled_and_replace():
    model = CostModel(mem_op_ns=2.0, call_ns=4.0)
    faster = model.scaled(0.5)
    assert faster.mem_op_ns == 1.0
    assert faster.call_ns == 2.0
    tweaked = model.replace(call_ns=10.0)
    assert tweaked.call_ns == 10.0
    assert tweaked.mem_op_ns == 2.0


def test_default_profile_is_neutral(space):
    context = Context(space)
    assert context.profile.load_factor == 1.0
    assert context.profile.store_factor == 1.0
    assert context.profile.monitors == []


def test_profile_fields():
    profile = DomainProfile(name="hardened", load_factor=2.0, store_factor=3.0)
    assert profile.name == "hardened"
    assert profile.load_factor == 2.0
