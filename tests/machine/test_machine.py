"""Unit tests for the Machine facade: checked access, faults, DMA."""

import pytest

from repro.machine import (
    Machine,
    PageFault,
    Permissions,
    ProtectionFault,
    SHViolation,
    pkru_for_keys,
)
from repro.machine.cpu import Context, DomainProfile
from repro.machine.memory import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def booted(machine):
    space = machine.new_address_space("main")
    machine.boot_context(space)
    return machine, space


def test_duplicate_space_rejected(machine):
    machine.new_address_space("a")
    with pytest.raises(ValueError):
        machine.new_address_space("a")


def test_load_store_roundtrip(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE)
    machine.store(vaddr, b"flexos")
    assert machine.load(vaddr, 6) == b"flexos"


def test_store_across_page_boundary(booted):
    machine, space = booted
    vaddr = space.map_new(2 * PAGE_SIZE)
    payload = bytes(range(20))
    machine.store(vaddr + PAGE_SIZE - 10, payload)
    assert machine.load(vaddr + PAGE_SIZE - 10, 20) == payload


def test_copy_and_fill(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE)
    machine.fill(vaddr, 0xAB, 8)
    machine.copy(vaddr + 100, vaddr, 8)
    assert machine.load(vaddr + 100, 8) == b"\xab" * 8


def test_unmapped_access_page_faults(booted):
    machine, _ = booted
    with pytest.raises(PageFault):
        machine.load(0x7777_0000, 1)
    with pytest.raises(PageFault):
        machine.store(0x7777_0000, b"x")


def test_readonly_page_write_faults(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE, perms=Permissions.READ)
    assert machine.load(vaddr, 1) == b"\x00"
    with pytest.raises(PageFault):
        machine.store(vaddr, b"x")


def test_pkey_read_denied(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE, pkey=4)
    machine.cpu.current.pkru = pkru_for_keys(writable=[0])
    with pytest.raises(ProtectionFault) as info:
        machine.load(vaddr, 1)
    assert info.value.pkey == 4


def test_pkey_write_denied_read_allowed(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE, pkey=4)
    machine.store(vaddr, b"seed")  # all-access boot context
    machine.cpu.current.pkru = pkru_for_keys(writable=[0], readable=[4])
    assert machine.load(vaddr, 4) == b"seed"
    with pytest.raises(ProtectionFault):
        machine.store(vaddr, b"x")


def test_pkey_check_applies_to_each_page(booted):
    # A range spanning two pages with different keys: access faults on
    # the page whose key the PKRU denies, even mid-range.
    machine, space = booted
    vaddr = space.map_new(2 * PAGE_SIZE)
    space.protect(vaddr + PAGE_SIZE, PAGE_SIZE, pkey=9)
    machine.cpu.current.pkru = pkru_for_keys(writable=[0])
    with pytest.raises(ProtectionFault):
        machine.load(vaddr + PAGE_SIZE - 4, 8)


def test_access_charges_clock_and_counters(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE)
    start = machine.cpu.clock_ns
    machine.store(vaddr, b"x" * 100)
    assert machine.cpu.clock_ns > start
    assert machine.cpu.stats["stores"] == 1
    assert machine.cpu.stats["store_bytes"] == 100


def test_profile_factor_scales_cost(machine):
    space = machine.new_address_space("main")
    vaddr = space.map_new(PAGE_SIZE)
    plain = Context(space, label="plain")
    machine.cpu.push_context(plain)
    machine.store(vaddr, b"x" * 64)
    plain_cost = machine.cpu.clock_ns
    machine.cpu.pop_context()

    hardened = Context(
        space, profile=DomainProfile(store_factor=3.0), label="hardened"
    )
    machine.cpu.push_context(hardened)
    base = machine.cpu.clock_ns
    machine.store(vaddr, b"x" * 64)
    hardened_cost = machine.cpu.clock_ns - base
    assert hardened_cost == pytest.approx(3.0 * plain_cost)


def test_monitor_runs_and_can_veto(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE)
    seen = []

    def monitor(mach, kind, addr, size):
        seen.append((kind, addr, size))
        if kind == "store" and size > 4:
            raise SHViolation("test-monitor", "store too large")

    machine.cpu.current.profile = DomainProfile(monitors=[monitor])
    machine.load(vaddr, 2)
    machine.store(vaddr, b"ab")
    with pytest.raises(SHViolation):
        machine.store(vaddr, b"abcdef")
    assert ("load", vaddr, 2) in seen


def test_dma_bypasses_pkey_and_cost(booted):
    machine, space = booted
    vaddr = space.map_new(PAGE_SIZE, pkey=5)
    machine.cpu.current.pkru = pkru_for_keys(writable=[0])
    start = machine.cpu.clock_ns
    machine.dma_write(space, vaddr, b"packet")
    assert machine.dma_read(space, vaddr, 6) == b"packet"
    assert machine.cpu.clock_ns == start


def test_vm_domains_are_isolated(machine):
    vm_a = machine.new_vm_domain("a")
    vm_b = machine.new_vm_domain("b")
    vaddr = vm_a.space.map_new(PAGE_SIZE)
    machine.boot_context(vm_a.space, label="vm a")
    machine.store(vaddr, b"private")
    machine.cpu.pop_context()
    machine.boot_context(vm_b.space, label="vm b")
    # The same virtual address is simply unmapped in VM b.
    with pytest.raises(PageFault):
        machine.load(vaddr, 7)


def test_shared_window_same_va_all_vms(machine):
    vm_a = machine.new_vm_domain("a")
    vm_b = machine.new_vm_domain("b")
    shared = machine.map_shared_window([vm_a, vm_b], PAGE_SIZE)
    machine.boot_context(vm_a.space, label="vm a")
    machine.store(shared, b"rpc-args")
    machine.cpu.pop_context()
    machine.boot_context(vm_b.space, label="vm b")
    assert machine.load(shared, 8) == b"rpc-args"
    assert (shared, PAGE_SIZE) in vm_a.shared_windows


def test_duplicate_vm_domain_rejected(machine):
    machine.new_vm_domain("a")
    with pytest.raises(ValueError):
        machine.new_vm_domain("a")
