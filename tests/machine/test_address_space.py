"""Unit tests for address spaces, mapping, and protection changes."""

import pytest

from repro.machine.address_space import AddressSpace, Permissions
from repro.machine.faults import OutOfMemoryError, PageFault
from repro.machine.memory import PAGE_SIZE, PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(64 * PAGE_SIZE)


@pytest.fixture
def space(phys):
    return AddressSpace("test", phys)


def test_map_new_returns_page_aligned(space):
    vaddr = space.map_new(100)
    assert vaddr % PAGE_SIZE == 0
    assert space.is_mapped(vaddr)
    assert not space.is_mapped(vaddr + PAGE_SIZE)


def test_reservations_do_not_overlap(space):
    first = space.map_new(3 * PAGE_SIZE)
    second = space.map_new(PAGE_SIZE)
    assert second >= first + 3 * PAGE_SIZE


def test_translate_roundtrip(space, phys):
    vaddr = space.map_new(2 * PAGE_SIZE)
    paddr = space.translate(vaddr + 17)
    phys.write(paddr, b"Z")
    assert phys.read(space.translate(vaddr + 17), 1) == b"Z"


def test_translate_unmapped_faults(space):
    with pytest.raises(PageFault):
        space.translate(0xDEAD000)


def test_fixed_mapping_and_double_map_rejected(space):
    vaddr = space.map_new(PAGE_SIZE, vaddr=0x4000_0000)
    assert vaddr == 0x4000_0000
    with pytest.raises(ValueError):
        space.map_new(PAGE_SIZE, vaddr=0x4000_0000)


def test_unaligned_fixed_mapping_rejected(space):
    with pytest.raises(ValueError):
        space.map_new(PAGE_SIZE, vaddr=0x4000_0001)


def test_unmap_frees_frames(space, phys):
    vaddr = space.map_new(2 * PAGE_SIZE)
    before = phys.frames_allocated
    space.unmap(vaddr, 2 * PAGE_SIZE)
    assert phys.frames_allocated == before - 2
    assert not space.is_mapped(vaddr)


def test_unmap_unmapped_faults(space):
    with pytest.raises(PageFault):
        space.unmap(0x7000_0000, PAGE_SIZE)


def test_protect_changes_pkey_and_perms(space):
    vaddr = space.map_new(PAGE_SIZE)
    space.protect(vaddr, PAGE_SIZE, perms=Permissions.READ, pkey=7)
    entry = space.entry(vaddr)
    assert entry.perms == Permissions.READ
    assert entry.pkey == 7


def test_protect_unmapped_faults(space):
    with pytest.raises(PageFault):
        space.protect(0x7000_0000, PAGE_SIZE, pkey=1)


def test_iter_range_splits_at_page_boundary(space):
    vaddr = space.map_new(2 * PAGE_SIZE)
    chunks = list(space.iter_range(vaddr + PAGE_SIZE - 10, 20))
    assert [size for _, size, _ in chunks] == [10, 10]


def test_iter_range_negative_size(space):
    vaddr = space.map_new(PAGE_SIZE)
    with pytest.raises(ValueError):
        list(space.iter_range(vaddr, -1))


def test_shared_frames_alias_content(space, phys):
    # Map the same frames at two different addresses: writes through one
    # mapping must be visible through the other (shared-memory basis of
    # the gate implementations).
    first = space.map_new(PAGE_SIZE)
    frames = space.frames_of(first, PAGE_SIZE)
    alias = space.reserve(PAGE_SIZE)
    space.map_frames(alias, frames)
    phys.write(space.translate(first), b"ping")
    assert phys.read(space.translate(alias), 4) == b"ping"


def test_va_exhaustion():
    phys = PhysicalMemory(16 * PAGE_SIZE)
    space = AddressSpace("tiny", phys, base=0x1000, limit=0x3000)
    space.map_new(2 * PAGE_SIZE)
    with pytest.raises(OutOfMemoryError):
        space.reserve(PAGE_SIZE)
