"""Property-based tests (hypothesis) for machine-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, Permissions
from repro.machine.memory import PAGE_SIZE, PhysicalMemory, page_align_up
from repro.machine.mpk import (
    MPK_NUM_KEYS,
    pkru_for_keys,
    pkru_readable,
    pkru_writable,
)

keys = st.integers(min_value=0, max_value=MPK_NUM_KEYS - 1)


@given(writable=st.sets(keys), readable=st.sets(keys))
def test_pkru_for_keys_is_exactly_what_was_asked(writable, readable):
    """pkru_for_keys grants precisely the requested rights.

    Keys in ``writable`` win over ``readable`` (writable implies
    readable); everything else is fully denied.
    """
    pkru = pkru_for_keys(writable=writable, readable=readable)
    for key in range(MPK_NUM_KEYS):
        if key in writable:
            assert pkru_writable(pkru, key)
            assert pkru_readable(pkru, key)
        elif key in readable:
            assert pkru_readable(pkru, key)
            assert not pkru_writable(pkru, key)
        else:
            assert not pkru_readable(pkru, key)
            assert not pkru_writable(pkru, key)


@given(pkru=st.integers(min_value=0, max_value=2**32 - 1), key=keys)
def test_writable_implies_readable_for_any_pkru(pkru, key):
    if pkru_writable(pkru, key):
        assert pkru_readable(pkru, key)


@given(size=st.integers(min_value=1, max_value=5 * PAGE_SIZE))
def test_page_align_up_properties(size):
    aligned = page_align_up(size)
    assert aligned >= size
    assert aligned % PAGE_SIZE == 0
    assert aligned - size < PAGE_SIZE


@settings(max_examples=30, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=3 * PAGE_SIZE - 1),
    payload=st.binary(min_size=1, max_size=PAGE_SIZE),
)
def test_store_load_roundtrip_any_offset(offset, payload):
    """Whatever is stored at any (possibly page-straddling) offset is
    loaded back verbatim, and neighbouring bytes are untouched."""
    machine = Machine()
    space = machine.new_address_space("main")
    vaddr = space.map_new(4 * PAGE_SIZE)
    machine.boot_context(space)
    machine.store(vaddr + offset, payload)
    assert machine.load(vaddr + offset, len(payload)) == payload
    if offset > 0:
        assert machine.load(vaddr + offset - 1, 1) == b"\x00"
    end = offset + len(payload)
    assert machine.load(vaddr + end, 1) == b"\x00"


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=4 * PAGE_SIZE), max_size=8))
def test_mappings_never_overlap(sizes):
    """Distinct map_new calls return disjoint virtual ranges."""
    phys = PhysicalMemory(256 * PAGE_SIZE)
    machine = Machine()
    space = machine.new_address_space("main")
    ranges = []
    for size in sizes:
        vaddr = space.map_new(size, perms=Permissions.RW)
        ranges.append((vaddr, page_align_up(size)))
    ranges.sort()
    for (a_start, a_size), (b_start, _) in zip(ranges, ranges[1:]):
        assert a_start + a_size <= b_start
    assert phys.frames_allocated == 0  # machine has its own phys
