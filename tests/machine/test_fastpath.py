"""Differential property tests: the software-TLB fast path vs the walk.

Two machines — identical except for the ``fastpath`` flag — execute the
same randomized trace of map/unmap/protect/pkey/wrpkru/load/store
operations.  Every operation must produce the same value or the same
fault, and at the end the simulated clock, every counter, and the full
physical memory image must be bit-identical.  This is the proof
obligation of ISSUE 7: the fast path may only change host wall-clock,
never any simulated observable.
"""

from __future__ import annotations

import random

import pytest

from repro.machine.address_space import Permissions
from repro.machine.capabilities import CapabilitySet
from repro.machine.cpu import DomainProfile
from repro.machine.faults import PageFault, ProtectionFault, SHViolation
from repro.machine.machine import Machine
from repro.machine.memory import PAGE_SIZE
from repro.machine.mpk import pkru_all_access, pkru_for_keys

#: Window of fixed-placement test pages (clear of the reserve bump).
BASE = 0x2000_0000
NUM_PAGES = 8
PERM_CHOICES = (
    Permissions.NONE,
    Permissions.READ,
    Permissions.RW,
)
PKEY_CHOICES = (0, 1, 2, 3)


def _build(fastpath: bool, profile: DomainProfile | None = None, caps=None):
    machine = Machine(fastpath=fastpath)
    space = machine.new_address_space("main")
    context = machine.boot_context(space, label="test")
    if profile is not None:
        context.profile = profile
    if caps is not None:
        context.capabilities = caps
    return machine, space, context


def _page_va(page: int) -> int:
    return BASE + page * PAGE_SIZE


def _random_trace(rng: random.Random, ops: int) -> list[tuple]:
    """A seeded operation trace, independent of any machine state."""
    trace = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.10:
            trace.append(
                (
                    "map",
                    rng.randrange(NUM_PAGES),
                    rng.choice(PERM_CHOICES),
                    rng.choice(PKEY_CHOICES),
                )
            )
        elif roll < 0.16:
            trace.append(("unmap", rng.randrange(NUM_PAGES)))
        elif roll < 0.26:
            trace.append(
                (
                    "protect",
                    rng.randrange(NUM_PAGES),
                    rng.choice(PERM_CHOICES + (None,)),
                    rng.choice(PKEY_CHOICES + (None,)),
                )
            )
        elif roll < 0.34:
            # PKRU change: sealed WRPKRU half the time, direct register
            # mutation (≈ a context switch restoring saved PKRU) the
            # other half.
            keys = tuple(
                key for key in PKEY_CHOICES if rng.random() < 0.7
            )
            trace.append(
                (
                    "pkru",
                    rng.random() < 0.5,
                    pkru_for_keys(writable=keys)
                    if keys
                    else pkru_all_access(),
                )
            )
        else:
            page = rng.randrange(NUM_PAGES)
            offset = rng.choice((0, 1, 7, PAGE_SIZE - 3, PAGE_SIZE - 1))
            # Bulk sizes (3+ pages) exercise the range cache, including
            # runs with non-contiguous frames (remapped pages) and
            # faults in the middle of a run.
            size = rng.choice(
                (0, 1, 8, 64, PAGE_SIZE, PAGE_SIZE + 17,
                 3 * PAGE_SIZE + 11, 6 * PAGE_SIZE)
            )
            vaddr = _page_va(page) + offset
            if roll < 0.67:
                trace.append(("load", vaddr, size))
            else:
                payload = bytes(
                    rng.getrandbits(8) for _ in range(min(size, 64))
                ) * (1 if size <= 64 else (size // 64 + 1))
                trace.append(("store", vaddr, payload[:size]))
    return trace


def _apply(machine: Machine, space, op: tuple):
    """Run one trace op; normalise the outcome (value or fault)."""
    cpu = machine.cpu
    kind = op[0]
    try:
        if kind == "map":
            _, page, perms, pkey = op
            if space.is_mapped(_page_va(page)):
                return ("noop",)
            space.map_new(PAGE_SIZE, perms, pkey, vaddr=_page_va(page))
            return ("mapped", page)
        if kind == "unmap":
            _, page = op
            if not space.is_mapped(_page_va(page)):
                return ("noop",)
            space.unmap(_page_va(page), PAGE_SIZE)
            return ("unmapped", page)
        if kind == "protect":
            _, page, perms, pkey = op
            if not space.is_mapped(_page_va(page)):
                return ("noop",)
            space.protect(_page_va(page), PAGE_SIZE, perms, pkey)
            return ("protected", page)
        if kind == "pkru":
            _, sealed, value = op
            if sealed:
                cpu.wrpkru(value, cpu.gate_token())
            else:
                cpu.current.pkru = value
            return ("pkru", value)
        if kind == "load":
            _, vaddr, size = op
            return ("bytes", machine.load(vaddr, size))
        if kind == "store":
            _, vaddr, payload = op
            machine.store(vaddr, payload)
            return ("stored", len(payload))
        raise AssertionError(f"unknown op {kind}")
    except (PageFault, ProtectionFault, SHViolation) as exc:
        return ("fault", type(exc).__name__, str(exc))


def _run_differential(seed: int, ops: int = 400, profile_factory=None,
                      caps_factory=None):
    rng = random.Random(seed)
    trace = _random_trace(rng, ops)
    fast, fast_space, _ = _build(
        True,
        profile_factory() if profile_factory else None,
        caps_factory() if caps_factory else None,
    )
    slow, slow_space, _ = _build(
        False,
        profile_factory() if profile_factory else None,
        caps_factory() if caps_factory else None,
    )
    assert fast.fastpath_enabled and not slow.fastpath_enabled
    for index, op in enumerate(trace):
        fast_result = _apply(fast, fast_space, op)
        slow_result = _apply(slow, slow_space, op)
        assert fast_result == slow_result, (
            f"divergence at op {index} {op!r}: "
            f"fast={fast_result!r} slow={slow_result!r}"
        )
    # Every simulated observable is bit-identical.
    assert fast.cpu.clock_ns == slow.cpu.clock_ns
    assert fast.cpu.snapshot() == slow.cpu.snapshot()
    assert fast.phys.data == slow.phys.data
    assert fast.phys.frames_allocated == slow.phys.frames_allocated
    return fast, slow


@pytest.mark.parametrize("seed", range(6))
def test_differential_neutral_profile(seed):
    fast, slow = _run_differential(seed)
    # The fast machine actually exercised its cache; the slow one never
    # touched it.
    stats = fast.fastpath_stats()
    assert stats["tlb_hits"] + stats["tlb_misses"] > 0
    assert slow.fastpath_stats()["tlb_hits"] == 0
    assert slow.fastpath_stats()["tlb_misses"] == 0


@pytest.mark.parametrize("seed", (1, 7))
def test_differential_asan_like_monitor(seed):
    """Monitors (charge + veto) run identically on both paths."""

    def profile():
        poisoned = (BASE + 2 * PAGE_SIZE + 100, BASE + 2 * PAGE_SIZE + 120)

        def monitor(machine, kind, vaddr, size):
            machine.cpu.charge(machine.cost.asan_check_ns)
            if vaddr < poisoned[1] and poisoned[0] < vaddr + size:
                raise SHViolation("asan", f"poisoned {kind} at {vaddr:#x}")

        return DomainProfile(
            name="asan-like",
            load_factor=1.32,
            store_factor=1.32,
            monitors=[monitor],
        )

    _run_differential(seed, profile_factory=profile)


@pytest.mark.parametrize("seed", (2, 9))
def test_differential_dfi_like_monitor(seed):
    """Store-only monitors (DFI) see the same access stream."""

    def profile():
        def monitor(machine, kind, vaddr, size):
            if kind != "store":
                return
            machine.cpu.bump("dfi_checks")

        return DomainProfile(
            name="dfi-like", store_factor=1.07, monitors=[monitor]
        )

    fast, slow = _run_differential(seed, profile_factory=profile)
    assert fast.cpu.stats.get("dfi_checks") == slow.cpu.stats.get("dfi_checks")


@pytest.mark.parametrize("seed", (3, 11))
def test_differential_capability_context(seed):
    """Capability contexts bypass the cache but stay bit-identical."""

    def caps():
        # Cover part of the window so some accesses fault on bounds.
        return CapabilitySet(
            "test", [(BASE, BASE + (NUM_PAGES - 2) * PAGE_SIZE)]
        )

    fast, slow = _run_differential(seed, caps_factory=caps)
    # Enforcement safety: capability accesses never populate the TLB.
    assert fast.fastpath_stats()["tlb_hits"] == 0
    assert fast.fastpath_stats()["tlb_misses"] == 0


def test_protect_revokes_cached_read():
    machine, space, _ = _build(True)
    vaddr = space.map_new(PAGE_SIZE, Permissions.RW)
    machine.store(vaddr, b"x" * 8)
    assert machine.load(vaddr, 8) == b"x" * 8  # populates the cache
    space.protect(vaddr, PAGE_SIZE, Permissions.NONE)
    with pytest.raises(PageFault):
        machine.load(vaddr, 8)
    with pytest.raises(PageFault):
        machine.store(vaddr, b"y")


def test_pkey_change_invalidates_cached_rights():
    machine, space, context = _build(True)
    vaddr = space.map_new(PAGE_SIZE, Permissions.RW, pkey=1)
    context.pkru = pkru_for_keys(writable=(1,))
    machine.store(vaddr, b"ok")
    space.protect(vaddr, PAGE_SIZE, pkey=2)  # now a key this PKRU denies
    with pytest.raises(ProtectionFault):
        machine.load(vaddr, 2)


def test_pkru_switch_needs_no_shootdown():
    """PKRU is part of the cache key: stale rights cannot leak."""
    machine, space, context = _build(True)
    vaddr = space.map_new(PAGE_SIZE, Permissions.RW, pkey=3)
    context.pkru = pkru_for_keys(writable=(3,))
    machine.store(vaddr, b"hot")  # cached under the permissive PKRU
    context.pkru = pkru_for_keys(writable=(0,))  # "context switch"
    with pytest.raises(ProtectionFault):
        machine.load(vaddr, 3)
    context.pkru = pkru_for_keys(writable=(3,))
    assert machine.load(vaddr, 3) == b"hot"


def test_remap_returns_new_frame_contents():
    machine, space, _ = _build(True)
    vaddr = space.map_new(PAGE_SIZE, Permissions.RW)
    machine.store(vaddr, b"old!")
    assert machine.load(vaddr, 4) == b"old!"
    space.unmap(vaddr, PAGE_SIZE)
    with pytest.raises(PageFault):
        machine.load(vaddr, 4)
    new_vaddr = space.map_new(PAGE_SIZE, Permissions.RW, vaddr=vaddr)
    assert new_vaddr == vaddr
    assert machine.load(vaddr, 4) == bytes(4)  # scrubbed fresh frame


def test_tlb_telemetry_counts():
    machine, space, _ = _build(True)
    vaddr = space.map_new(PAGE_SIZE, Permissions.RW)
    machine.store(vaddr, b"a")
    machine.store(vaddr, b"b")
    machine.load(vaddr, 1)
    machine.load(vaddr, 1)
    stats = machine.fastpath_stats()
    assert stats["enabled"] is True
    assert stats["tlb_misses"] == 2  # one read fill, one write fill
    assert stats["tlb_hits"] == 2
    before = stats["tlb_invalidations"]
    space.protect(vaddr, PAGE_SIZE, Permissions.READ)
    assert machine.fastpath_stats()["tlb_invalidations"] == before + 1
    # Telemetry never leaks into the simulated counter registry.
    assert "tlb_hits" not in machine.cpu.stats


def test_range_cache_bulk_roundtrip_and_invalidation():
    """Multi-page runs hit the range cache; protect revokes the run."""
    machine, space, _ = _build(True)
    vaddr = space.map_new(8 * PAGE_SIZE, Permissions.RW)
    payload = bytes(range(256)) * (8 * PAGE_SIZE // 256)
    machine.store(vaddr, payload)
    assert machine.load(vaddr, 8 * PAGE_SIZE) == payload
    # The second bulk access of each kind is a single range-cache hit.
    hits = machine.tlb_hits
    machine.load(vaddr, 8 * PAGE_SIZE)
    assert machine.tlb_hits == hits + 1
    # Write-protecting one page in the middle must fault the whole run.
    space.protect(vaddr + 3 * PAGE_SIZE, PAGE_SIZE, Permissions.READ)
    with pytest.raises(PageFault):
        machine.store(vaddr, payload)
    # ... and a partial store stops exactly at the revoked page, like
    # the slow path.
    assert machine.load(vaddr, 8 * PAGE_SIZE) == payload


def test_range_cache_skips_non_contiguous_runs():
    """Runs over scattered frames never enter the range cache but stay
    correct."""
    machine, space, _ = _build(True)
    vaddr = space.map_new(4 * PAGE_SIZE, Permissions.RW)
    # Remap the second page to a different (later) frame: the run's
    # frames are no longer physically contiguous.  The intervening
    # mapping steals the recycled frame so the remap gets a fresh one.
    space.unmap(vaddr + PAGE_SIZE, PAGE_SIZE)
    space.map_new(PAGE_SIZE, Permissions.RW)
    space.map_new(PAGE_SIZE, Permissions.RW, vaddr=vaddr + PAGE_SIZE)
    frames = [space._pages[(vaddr >> 12) + i].frame for i in range(4)]
    assert frames != sorted(frames) or frames[1] != frames[0] + 1
    payload = b"\xab\xcd" * (2 * PAGE_SIZE)
    machine.store(vaddr, payload)
    assert machine.load(vaddr, 4 * PAGE_SIZE) == payload
    machine.load(vaddr, 4 * PAGE_SIZE)
    assert not space._range_cache  # never cached, still correct


def test_fastpath_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    assert Machine().fastpath_enabled is False
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    assert Machine().fastpath_enabled is True
    monkeypatch.delenv("REPRO_FASTPATH")
    assert Machine().fastpath_enabled is True
    assert Machine(fastpath=False).fastpath_enabled is False


def test_dma_differential():
    """DMA uses the translation-only cache; results stay identical."""
    fast, fast_space, _ = _build(True)
    slow, slow_space, _ = _build(False)
    for machine, space in ((fast, fast_space), (slow, slow_space)):
        vaddr = space.map_new(3 * PAGE_SIZE, Permissions.RW)
        machine.dma_write(space, vaddr + 100, b"dma" * 2000)
    assert fast.phys.data == slow.phys.data
    got_fast = fast.dma_read(fast_space, fast_space._next_va - 3 * PAGE_SIZE + 100, 6000)
    got_slow = slow.dma_read(slow_space, slow_space._next_va - 3 * PAGE_SIZE + 100, 6000)
    assert got_fast == got_slow == b"dma" * 2000
