"""Unit tests for CHERI-style capability sets."""

import pytest

from repro.machine.capabilities import CapabilitySet, base_capabilities
from repro.machine.faults import ProtectionFault


@pytest.fixture
def caps():
    return CapabilitySet(
        "test", base_ranges=[(0x1000, 0x2000)], shared_ranges=[(0x9000, 0xA000)]
    )


def test_base_range_access(caps):
    caps.check(0x1000, 16, "load")
    caps.check(0x1FF0, 16, "store")
    with pytest.raises(ProtectionFault):
        caps.check(0x2000, 1, "load")
    with pytest.raises(ProtectionFault):
        caps.check(0x1FF0, 17, "store")  # straddles the end


def test_shared_range_access(caps):
    caps.check(0x9000, 64, "store")
    with pytest.raises(ProtectionFault):
        caps.check(0x8FFF, 2, "load")


def test_grants_extend_reach(caps):
    with pytest.raises(ProtectionFault):
        caps.check(0x5000, 8, "load")
    caps.grant(0x5000, 64)
    caps.check(0x5000, 64, "load")
    caps.check(0x5000, 64, "store")
    with pytest.raises(ProtectionFault):
        caps.check(0x5040, 1, "load")  # beyond the grant


def test_readonly_grant(caps):
    caps.grant(0x5000, 64, writable=False)
    caps.check(0x5000, 8, "load")
    with pytest.raises(ProtectionFault):
        caps.check(0x5000, 8, "store")


def test_zero_size_grant_ignored(caps):
    caps.grant(0x5000, 0)
    with pytest.raises(ProtectionFault):
        caps.check(0x5000, 1, "load")


def test_derive_isolates_grants(caps):
    derived = caps.derive()
    derived.grant(0x5000, 64)
    derived.check(0x5000, 8, "load")
    with pytest.raises(ProtectionFault):
        caps.check(0x5000, 8, "load")  # original unchanged
    # Base ranges stay shared (live list reference).
    caps.base_ranges.append((0x7000, 0x7100))
    derived.check(0x7000, 16, "load")


def test_base_capabilities_track_compartment_growth():
    from repro.libos.compartment import Compartment
    from repro.machine.machine import Machine

    machine = Machine()
    space = machine.new_address_space("main")
    compartment = Compartment(0, "c", machine)
    compartment.address_space = space
    caps = base_capabilities(compartment, [])
    addr = compartment.alloc_region(64)  # mapped after the set existed
    caps.check(addr, 16, "store")
