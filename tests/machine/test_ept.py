"""EPT/VM-domain edge cases."""

import pytest

from repro.machine.ept import SharedWindowAllocator, VMDomain
from repro.machine.memory import PAGE_SIZE, PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(256 * PAGE_SIZE)


def test_shared_window_requires_domains(phys):
    allocator = SharedWindowAllocator(phys)
    with pytest.raises(ValueError, match="at least one domain"):
        allocator.map_shared([], PAGE_SIZE)


def test_shared_windows_are_disjoint(phys):
    allocator = SharedWindowAllocator(phys)
    domain = VMDomain(0, "a", phys)
    first = allocator.map_shared([domain], 2 * PAGE_SIZE)
    second = allocator.map_shared([domain], PAGE_SIZE)
    assert second >= first + 2 * PAGE_SIZE
    assert domain.shared_windows == [
        (first, 2 * PAGE_SIZE),
        (second, PAGE_SIZE),
    ]


def test_shared_window_range_exhaustion(phys):
    allocator = SharedWindowAllocator(phys)
    allocator._next_va = SharedWindowAllocator.SHARED_LIMIT - PAGE_SIZE
    domain = VMDomain(0, "a", phys)
    allocator.map_shared([domain], PAGE_SIZE)
    with pytest.raises(ValueError, match="exhausted"):
        allocator.map_shared([domain], PAGE_SIZE)


def test_window_content_shared_between_domains(phys):
    allocator = SharedWindowAllocator(phys)
    domain_a = VMDomain(0, "a", phys)
    domain_b = VMDomain(1, "b", phys)
    vaddr = allocator.map_shared([domain_a, domain_b], PAGE_SIZE)
    phys.write(domain_a.space.translate(vaddr), b"both see this")
    assert phys.read(domain_b.space.translate(vaddr), 13) == b"both see this"


def test_private_reservations_below_shared_range(phys):
    domain = VMDomain(0, "a", phys)
    private = domain.space.map_new(PAGE_SIZE)
    assert private < SharedWindowAllocator.SHARED_BASE
