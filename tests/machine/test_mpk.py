"""Unit tests for MPK/PKRU semantics."""

import pytest

from repro.machine.mpk import (
    MPK_NUM_KEYS,
    describe_pkru,
    pkru_all_access,
    pkru_deny_all,
    pkru_for_keys,
    pkru_readable,
    pkru_writable,
)


def test_all_access_allows_everything():
    pkru = pkru_all_access()
    for key in range(MPK_NUM_KEYS):
        assert pkru_readable(pkru, key)
        assert pkru_writable(pkru, key)


def test_deny_all_blocks_everything():
    pkru = pkru_deny_all()
    for key in range(MPK_NUM_KEYS):
        assert not pkru_readable(pkru, key)
        assert not pkru_writable(pkru, key)


def test_for_keys_writable_and_readable():
    pkru = pkru_for_keys(writable=[1, 2], readable=[3])
    assert pkru_writable(pkru, 1)
    assert pkru_writable(pkru, 2)
    assert pkru_readable(pkru, 3)
    assert not pkru_writable(pkru, 3)
    assert not pkru_readable(pkru, 4)
    assert not pkru_writable(pkru, 0)


def test_writable_implies_readable():
    pkru = pkru_for_keys(writable=[5])
    assert pkru_readable(pkru, 5)


def test_invalid_key_rejected():
    with pytest.raises(ValueError):
        pkru_readable(0, MPK_NUM_KEYS)
    with pytest.raises(ValueError):
        pkru_writable(0, -1)
    with pytest.raises(ValueError):
        pkru_for_keys(writable=[16])


def test_describe_pkru():
    text = describe_pkru(pkru_for_keys(writable=[0], readable=[1]))
    assert text.startswith("0:rw 1:r- 2:--")
