"""Unit tests for physical memory and frame allocation."""

import pytest

from repro.machine.faults import OutOfMemoryError
from repro.machine.memory import (
    PAGE_SIZE,
    PhysicalMemory,
    page_align_down,
    page_align_up,
)


def test_page_align_up():
    assert page_align_up(0) == 0
    assert page_align_up(1) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE


def test_page_align_down():
    assert page_align_down(0) == 0
    assert page_align_down(PAGE_SIZE - 1) == 0
    assert page_align_down(PAGE_SIZE) == PAGE_SIZE
    assert page_align_down(2 * PAGE_SIZE + 5) == 2 * PAGE_SIZE


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(0)
    with pytest.raises(ValueError):
        PhysicalMemory(PAGE_SIZE + 1)


def test_frame_allocation_is_sequential():
    mem = PhysicalMemory(4 * PAGE_SIZE)
    assert mem.alloc_frame() == 0
    assert mem.alloc_frame() == 1
    assert mem.frames_allocated == 2


def test_frame_exhaustion():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    mem.alloc_frames(2)
    with pytest.raises(OutOfMemoryError):
        mem.alloc_frame()


def test_freed_frames_are_recycled_and_scrubbed():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    frame = mem.alloc_frame()
    mem.write(frame * PAGE_SIZE, b"secret")
    mem.free_frame(frame)
    again = mem.alloc_frame()
    # The recycled frame must come back and must not leak old bytes.
    assert again == frame
    assert mem.read(frame * PAGE_SIZE, 6) == bytes(6)


def test_free_invalid_frame():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    with pytest.raises(ValueError):
        mem.free_frame(0)  # never allocated
    with pytest.raises(ValueError):
        mem.free_frame(-1)


def test_read_write_roundtrip():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    mem.write(100, b"abcdef")
    assert mem.read(100, 6) == b"abcdef"
    assert mem.read(99, 1) == b"\x00"


def test_out_of_range_access():
    mem = PhysicalMemory(PAGE_SIZE)
    with pytest.raises(ValueError):
        mem.read(PAGE_SIZE - 1, 2)
    with pytest.raises(ValueError):
        mem.write(PAGE_SIZE, b"x")
    with pytest.raises(ValueError):
        mem.read(-1, 1)


def test_negative_frame_count():
    mem = PhysicalMemory(PAGE_SIZE)
    with pytest.raises(ValueError):
        mem.alloc_frames(-1)
