"""Unit tests for physical memory and frame allocation."""

import pytest

from repro.machine.faults import OutOfMemoryError
from repro.machine.memory import (
    PAGE_SIZE,
    PhysicalMemory,
    page_align_down,
    page_align_up,
)


def test_page_align_up():
    assert page_align_up(0) == 0
    assert page_align_up(1) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE


def test_page_align_down():
    assert page_align_down(0) == 0
    assert page_align_down(PAGE_SIZE - 1) == 0
    assert page_align_down(PAGE_SIZE) == PAGE_SIZE
    assert page_align_down(2 * PAGE_SIZE + 5) == 2 * PAGE_SIZE


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(0)
    with pytest.raises(ValueError):
        PhysicalMemory(PAGE_SIZE + 1)


def test_frame_allocation_is_sequential():
    mem = PhysicalMemory(4 * PAGE_SIZE)
    assert mem.alloc_frame() == 0
    assert mem.alloc_frame() == 1
    assert mem.frames_allocated == 2


def test_frame_exhaustion():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    mem.alloc_frames(2)
    with pytest.raises(OutOfMemoryError):
        mem.alloc_frame()


def test_freed_frames_are_recycled_and_scrubbed():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    frame = mem.alloc_frame()
    mem.write(frame * PAGE_SIZE, b"secret")
    mem.free_frame(frame)
    again = mem.alloc_frame()
    # The recycled frame must come back and must not leak old bytes.
    assert again == frame
    assert mem.read(frame * PAGE_SIZE, 6) == bytes(6)


def test_free_invalid_frame():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    with pytest.raises(ValueError):
        mem.free_frame(0)  # never allocated
    with pytest.raises(ValueError):
        mem.free_frame(-1)


def test_read_write_roundtrip():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    mem.write(100, b"abcdef")
    assert mem.read(100, 6) == b"abcdef"
    assert mem.read(99, 1) == b"\x00"


def test_out_of_range_access():
    mem = PhysicalMemory(PAGE_SIZE)
    with pytest.raises(ValueError):
        mem.read(PAGE_SIZE - 1, 2)
    with pytest.raises(ValueError):
        mem.write(PAGE_SIZE, b"x")
    with pytest.raises(ValueError):
        mem.read(-1, 1)


def test_negative_frame_count():
    mem = PhysicalMemory(PAGE_SIZE)
    with pytest.raises(ValueError):
        mem.alloc_frames(-1)


def test_alloc_frames_rolls_back_on_exhaustion():
    # Regression: a bulk request that runs out of memory partway used
    # to leak the frames it had already taken.  The failed request must
    # leave the allocator exactly as it found it.
    mem = PhysicalMemory(4 * PAGE_SIZE)
    mem.alloc_frames(2)
    assert mem.frames_allocated == 2
    with pytest.raises(OutOfMemoryError):
        mem.alloc_frames(3)  # only 2 frames left
    assert mem.frames_allocated == 2
    # The rolled-back frames are immediately reusable.
    assert len(mem.alloc_frames(2)) == 2
    assert mem.frames_allocated == 4


def test_read_returns_immutable_snapshot():
    # read() is built from the cached memoryview but must still be a
    # snapshot: later writes do not alter previously returned bytes.
    mem = PhysicalMemory(PAGE_SIZE)
    mem.write(0, b"before")
    snap = mem.read(0, 6)
    mem.write(0, b"after!")
    assert snap == b"before"
    assert isinstance(snap, bytes)


def test_read_view_is_zero_copy_and_readonly():
    mem = PhysicalMemory(PAGE_SIZE)
    mem.write(8, b"live")
    view = mem.read_view(8, 4)
    assert bytes(view) == b"live"
    mem.write(8, b"LIVE")
    assert bytes(view) == b"LIVE"  # aliases live memory
    with pytest.raises(TypeError):
        view[0] = 0
    with pytest.raises(ValueError):
        mem.read_view(PAGE_SIZE - 1, 2)
