"""Cost-model sanity tests."""

import dataclasses

import pytest

from repro.machine.cycles import DEFAULT_COST_MODEL, PAPER_CLOCK_GHZ, CostModel


def test_defaults_match_paper_anchors():
    cost = CostModel()
    # The two measured anchors the paper states outright.
    assert cost.ctx_switch_ns == 76.6
    # Verified switch: base + 8 contract clauses = 218.6 (paper).
    assert cost.ctx_switch_ns + 8 * cost.contract_check_ns == pytest.approx(
        218.6
    )
    assert PAPER_CLOCK_GHZ == 2.1


def test_all_costs_positive():
    cost = CostModel()
    for field in dataclasses.fields(CostModel):
        assert getattr(cost, field.name) > 0, field.name


def test_relative_cost_ladder():
    """The hardware cost ordering every figure depends on."""
    cost = CostModel()
    assert cost.call_ns < cost.cheri_crossing_ns
    assert cost.cheri_crossing_ns < cost.wrpkru_ns + cost.gate_dispatch_ns
    assert cost.wrpkru_ns < cost.stack_switch_ns + cost.wrpkru_ns
    assert cost.stack_switch_ns < cost.vm_notify_ns
    assert cost.vm_notify_ns > 100 * cost.wrpkru_ns / 2  # µs vs tens of ns


def test_scaled_scales_every_field():
    cost = CostModel()
    doubled = cost.scaled(2.0)
    for field in dataclasses.fields(CostModel):
        assert getattr(doubled, field.name) == pytest.approx(
            2.0 * getattr(cost, field.name)
        )


def test_replace_is_partial_and_pure():
    cost = CostModel()
    tweaked = cost.replace(vm_notify_ns=1.0)
    assert tweaked.vm_notify_ns == 1.0
    assert tweaked.mem_op_ns == cost.mem_op_ns
    assert cost.vm_notify_ns != 1.0  # original untouched


def test_default_model_singleton_is_a_costmodel():
    assert isinstance(DEFAULT_COST_MODEL, CostModel)


def test_sh_factors_above_one():
    cost = CostModel()
    assert cost.asan_mem_factor > 1
    assert cost.dfi_store_factor > 1
    assert cost.ubsan_mem_factor > 1


def test_wire_slower_than_memcpy():
    """The line rate must sit below streaming-copy bandwidth, or large
    transfers could never be wire-bound (Fig. 3's convergence)."""
    cost = CostModel()
    assert cost.wire_byte_ns > 2 * cost.mem_byte_ns
