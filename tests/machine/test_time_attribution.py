"""Per-domain simulated-time attribution (the built-in profiler)."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.machine.machine import Machine


def test_attribution_off_by_default():
    machine = Machine()
    machine.boot_context(machine.new_address_space("main"))
    machine.cpu.charge(100)
    assert machine.cpu.domain_time_ns == {}


def test_attribution_buckets_by_profile():
    machine = Machine()
    space = machine.new_address_space("main")
    machine.cpu.attribute_time = True
    context = machine.boot_context(space)
    context.profile.name = "alpha"
    machine.cpu.charge(100)
    from repro.machine.cpu import Context, DomainProfile

    machine.cpu.push_context(Context(space, profile=DomainProfile(name="beta")))
    machine.cpu.charge(40)
    machine.cpu.pop_context()
    machine.cpu.charge(10)
    assert machine.cpu.domain_time_ns == {"alpha": 110.0, "beta": 40.0}


def test_attribution_sums_to_clock():
    machine = Machine()
    space = machine.new_address_space("main")
    machine.cpu.attribute_time = True
    machine.boot_context(space)
    for ns in (1.5, 2.5, 96.0):
        machine.cpu.charge(ns)
    assert sum(machine.cpu.domain_time_ns.values()) == pytest.approx(
        machine.cpu.clock_ns
    )


def test_iperf_time_split_matches_table1_intuition():
    """Under attribution, LibC (the copies) dominates the instrumentable
    share — the mechanism behind Table 1's ordering."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[
                ["netstack"],
                ["sched"],
                ["libc"],
                ["alloc", "iperf"],
            ],
            backend="none",
        )
    )
    cpu = image.machine.cpu
    cpu.attribute_time = True
    cpu.domain_time_ns.clear()
    run_iperf(image, 4096, 1 << 18)
    split = cpu.domain_time_ns
    libc_time = split.get("libc", 0.0)
    sched_time = split.get("sched", 0.0)
    netstack_time = split.get("netstack", 0.0)
    assert libc_time > netstack_time  # copies beat header parsing
    assert sum(split.values()) == pytest.approx(
        cpu.clock_ns - 0, rel=0.5
    )  # most charged time is attributed (boot preceded attribution)
    # The scheduler is a small slice, as its ~1% Table-1 row implies.
    assert sched_time < 0.25 * sum(split.values())
