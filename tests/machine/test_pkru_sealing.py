"""PKRU sealing: rogue WRPKRU is blocked, gates still work (paper §3).

"Since any compartment can modify its value, the MPK backend has to
prevent such unauthorized writes; it can do so via static analysis,
runtime checks or page-table sealing."  The simulated CPU only honours
WRPKRU from holders of the gate token.
"""

import pytest

from repro import BuildConfig, build_image
from repro.machine.faults import ProtectionFault
from repro.machine.mpk import pkru_all_access

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


@pytest.fixture
def image():
    return build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="mpk-shared")
    )


def test_rogue_wrpkru_blocked(image):
    """A hijacked compartment tries to grant itself full access."""
    cpu = image.machine.cpu
    cpu.push_context(image.compartment_of("netstack").make_context("hijacked"))
    try:
        with pytest.raises(ProtectionFault, match="PKRU sealing"):
            cpu.wrpkru(pkru_all_access())
        # And the escalation did not happen: foreign memory still faults.
        victim = image.compartment_of("sched").alloc_region(64)
        with pytest.raises(ProtectionFault):
            image.machine.store(victim, b"x")
    finally:
        cpu.pop_context()


def test_rogue_wrpkru_with_wrong_token_blocked(image):
    cpu = image.machine.cpu
    cpu.push_context(image.compartment_of("netstack").make_context())
    try:
        with pytest.raises(ProtectionFault):
            cpu.wrpkru(pkru_all_access(), token=object())
    finally:
        cpu.pop_context()


def test_gates_are_authorized(image):
    """Gate crossings perform two sealed WRPKRUs each and succeed."""
    iperf = image.lib("iperf")
    cpu = image.machine.cpu
    cpu.push_context(image.compartment_of("iperf").make_context("app"))
    try:
        before = cpu.stats.get("wrpkru", 0)
        iperf.stub("netstack").call("listen", 6100)
        issued = cpu.stats["wrpkru"] - before
        # Two per crossing (entry + exit); listen itself plus its
        # internal netstack→libc sem_new crossing.
        assert issued >= 2 and issued % 2 == 0
    finally:
        cpu.pop_context()


def test_wrpkru_charges_even_when_blocked(image):
    """The instruction executes before the sealing trap fires."""
    cpu = image.machine.cpu
    cpu.push_context(image.compartment_of("netstack").make_context())
    try:
        before = cpu.clock_ns
        with pytest.raises(ProtectionFault):
            cpu.wrpkru(0)
        assert cpu.clock_ns == before + image.machine.cost.wrpkru_ns
    finally:
        cpu.pop_context()


def test_crossing_cost_includes_wrpkru(image):
    """Gate cost accounting is unchanged by the sealing refactor."""
    iperf = image.lib("iperf")
    cpu = image.machine.cpu
    cpu.push_context(image.compartment_of("iperf").make_context("app"))
    try:
        cost = image.machine.cost
        start = cpu.clock_ns
        iperf.stub("netstack").call("net_stats")
        elapsed = cpu.clock_ns - start
        floor = 2 * cost.wrpkru_ns + cost.gate_dispatch_ns + cost.call_ns
        assert elapsed >= floor
    finally:
        cpu.pop_context()
