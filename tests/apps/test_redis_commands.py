"""Extended Redis command set: DEL, EXISTS, INCR, APPEND."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import ClosedLoopSource, start_redis
from repro.apps.workload import _switch_budget


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "redis"]],
            backend="none",
        )
    )


def run_requests(image, payloads, window=4):
    app = start_redis(image)
    netstack = image.lib("netstack")
    source = ClosedLoopSource(app.PORT, payloads, window=window)
    responses = []
    netstack.nic.rx_source = source.source
    netstack.nic.tx_sink = lambda frame: (
        source.sink(frame),
        responses.append(source.last_response),
    )
    image.run(until=lambda: source.done, max_switches=_switch_budget(len(payloads)))
    assert source.done
    return responses


def test_del_existing_and_missing(image):
    responses = run_requests(
        image, [b"SET k 3\nabc", b"DEL k\n", b"DEL k\n", b"GET k\n"]
    )
    assert responses == [b"+OK\n", b":1\n", b":0\n", b"$-1\n"]
    assert image.call("redis", "dbsize") == 0


def test_del_frees_heap(image):
    allocator = image.compartment_of("redis").allocator
    run_requests(image, [b"SET big 512\n" + b"x" * 512])
    in_use = allocator.bytes_in_use
    run_requests(image, [b"DEL big\n"])
    assert allocator.bytes_in_use < in_use


def test_exists(image):
    responses = run_requests(
        image, [b"EXISTS k\n", b"SET k 1\nv", b"EXISTS k\n"]
    )
    assert responses == [b":0\n", b"+OK\n", b":1\n"]


def test_incr_from_nothing_and_existing(image):
    responses = run_requests(
        image, [b"INCR counter\n", b"INCR counter\n", b"GET counter\n"]
    )
    assert responses == [b":1\n", b":2\n", b"$1\n2"]
    # Many increments cross a digit-length boundary correctly.
    responses = run_requests(image, [b"INCR counter\n"] * 10)
    assert responses[-1] == b":12\n"
    assert image.lib("redis").value_of(b"counter") == b"12"


def test_incr_non_numeric_errors(image):
    responses = run_requests(
        image, [b"SET word 5\nhello", b"INCR word\n"]
    )
    assert responses == [b"+OK\n", b"-ERR\n"]
    # The old value is untouched.
    assert image.lib("redis").value_of(b"word") == b"hello"


def test_append_builds_strings(image):
    responses = run_requests(
        image,
        [
            b"APPEND log 5\nfirst",
            b"APPEND log 7\n|second",
            b"GET log\n",
        ],
    )
    assert responses == [b":5\n", b":12\n", b"$12\nfirst|second"]


def test_append_bad_args(image):
    responses = run_requests(image, [b"APPEND onlykey\n"])
    assert responses == [b"-ERR\n"]


def test_commands_work_under_mpk():
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "redis"]],
            backend="mpk-shared",
        )
    )
    responses = run_requests(
        image,
        [b"SET a 1\nx", b"INCR n\n", b"APPEND a 1\ny", b"EXISTS a\n", b"DEL a\n"],
    )
    assert responses == [b"+OK\n", b":1\n", b":2\n", b":1\n", b":1\n"]
