"""Functional tests for the Redis-like server (protocol correctness)."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import (
    ClosedLoopSource,
    make_get_payloads,
    make_set_payloads,
    run_redis_phase,
    start_redis,
)

GROUPS = [["netstack"], ["sched", "alloc", "libc", "redis"]]


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=GROUPS,
            backend="none",
        )
    )


def run_requests(image, payloads, window=4):
    app = start_redis(image)
    netstack = image.lib("netstack")
    source = ClosedLoopSource(app.PORT, payloads, window=window)
    netstack.nic.rx_source = source.source
    responses = []
    netstack.nic.tx_sink = lambda frame: (
        source.sink(frame),
        responses.append(source.last_response),
    )
    image.run(until=lambda: source.done, max_switches=100_000)
    assert source.done
    return responses


def test_set_then_get_roundtrip(image):
    responses = run_requests(
        image,
        [b"SET color 4\nblue", b"GET color\n"],
    )
    assert responses == [b"+OK\n", b"$4\nblue"]


def test_get_miss(image):
    responses = run_requests(image, [b"GET nothing\n"])
    assert responses == [b"$-1\n"]
    assert image.call("redis", "redis_stats")["misses"] == 1


def test_overwrite_replaces_value(image):
    responses = run_requests(
        image,
        [b"SET k 3\nold", b"SET k 7\nnewdata", b"GET k\n"],
    )
    assert responses[-1] == b"$7\nnewdata"
    assert image.call("redis", "dbsize") == 1


def test_values_live_in_simulated_memory(image):
    run_requests(image, [b"SET key 11\nhello world"])
    assert image.lib("redis").value_of(b"key") == b"hello world"
    assert image.lib("redis").value_of(b"absent") is None


def test_empty_value(image):
    responses = run_requests(image, [b"SET empty 0\n", b"GET empty\n"])
    assert responses == [b"+OK\n", b"$0\n"]


def test_binaryish_values(image):
    value = bytes(range(1, 128))
    request = b"SET bin %d\n" % len(value) + value
    responses = run_requests(image, [request, b"GET bin\n"])
    assert responses[-1] == b"$%d\n" % len(value) + value


def test_malformed_commands(image):
    responses = run_requests(
        image,
        [b"SET missing-args\n", b"FLY away\n", b"SET k notanum\n"],
    )
    assert responses == [b"-ERR\n"] * 3
    assert image.call("redis", "redis_stats")["errors"] == 3


def test_pipelined_commands_in_one_packet(image):
    responses = run_requests(
        image, [b"SET a 1\nxGET a\n" + b"GET missing\n"]
    )
    # One packet carrying three commands yields three responses.
    assert responses == [b"+OK\n", b"$1\nx", b"$-1\n"]


def test_partial_command_across_packets(image):
    """A SET whose value is split across two packets completes after the
    second arrives (stream reassembly)."""
    # window=2 so the completing packet is sent without waiting for a
    # response to the (necessarily silent) partial one.
    half1 = b"SET split 10\nfirst"
    half2 = b"half!GET split\n"
    responses = run_requests(image, [half1, half2], window=2)
    assert responses == [b"+OK\n", b"$10\nfirsthalf!"]


def test_stats_counters(image):
    run_requests(
        image,
        [b"SET a 1\nx", b"GET a\n", b"GET a\n", b"GET b\n"],
    )
    stats = image.call("redis", "redis_stats")
    assert stats["sets"] == 1
    assert stats["gets"] == 3
    assert stats["misses"] == 1
    assert stats["responses"] == 4


def test_run_redis_phase_helper(image):
    start_redis(image)
    sets = run_redis_phase(
        image, make_set_payloads(20, 32, keyspace=8), expect_prefix=b"+OK"
    )
    assert sets.requests == 20
    gets = run_redis_phase(
        image, make_get_payloads(40, 8), expect_prefix=b"$"
    )
    assert gets.requests == 40
    assert gets.mreq_s > 0
    assert gets.elapsed_ns > 0


def test_payload_generators():
    sets = make_set_payloads(10, 16, keyspace=4)
    assert len(sets) == 10
    assert sets[0].startswith(b"*3\r\n$3\r\nSET\r\n$4\r\nkey0\r\n$16\r\n")
    assert b"$4\r\nkey0\r\n" in sets[4]  # keyspace cycles
    gets = make_get_payloads(6, 3)
    assert gets[3] == b"*2\r\n$3\r\nGET\r\n$4\r\nkey0\r\n"


def test_payload_generators_text_compat():
    sets = make_set_payloads(10, 16, keyspace=4, protocol="text")
    assert sets[0].startswith(b"SET key0 16\n")
    gets = make_get_payloads(6, 3, protocol="text")
    assert gets[3] == b"GET key0\n"


def test_start_redis_idempotent(image):
    app1 = start_redis(image)
    app2 = start_redis(image)
    assert app1 is app2
