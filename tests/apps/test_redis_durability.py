"""Durable redis: AOF-style journaling into the kv compartment, plus the
truncated-dump regression for ``load``."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import start_redis
from repro.apps.rediserver import DumpTruncatedError
from repro.apps.workload import run_redis_phase
from repro.libos.blk.blkdev import DiskMedium


def build_durable(medium=None, backend="none"):
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "blk", "kv", "redis"],
            compartments=[
                ["netstack"],
                ["blk", "kv"],
                ["sched", "alloc", "libc", "redis"],
            ],
            backend=backend,
        )
    )
    if medium is not None:
        image.lib("blk").attach_medium(medium)
    return image


def drive(image, payloads, expect=b"+OK"):
    start_redis(image)
    run_redis_phase(image, payloads, window=4, expect_prefix=expect)


def set_payloads(entries):
    return [
        b"SET %s %d\n" % (key, len(value)) + value for key, value in entries
    ]


# --- durable SET/DEL ---------------------------------------------------------


def test_set_journals_into_kv():
    image = build_durable()
    assert image.lib("redis").durable
    drive(image, set_payloads([(b"a", b"one"), (b"b", b"two")]))
    stats = image.call("redis", "redis_stats")
    assert stats["durable"] is True
    assert stats["kv_writes"] == 2
    assert image.call("kv", "kv_keys") == [b"a", b"b"]
    kv_stats = image.call("kv", "kv_stats")
    assert kv_stats["puts"] == 2


def test_del_journals_tombstone():
    image = build_durable()
    drive(image, set_payloads([(b"doomed", b"x")]))
    run_redis_phase(image, [b"DEL doomed\n"], expect_prefix=b":1")
    assert image.call("kv", "kv_keys") == []
    assert image.call("redis", "redis_stats")["kv_writes"] == 2


def test_volatile_image_still_works():
    """Without kv, redis runs exactly as before (no durability)."""
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "redis"]],
            backend="none",
        )
    )
    assert not image.lib("redis").durable
    drive(image, set_payloads([(b"v", b"volatile")]))
    stats = image.call("redis", "redis_stats")
    assert stats["durable"] is False and stats["kv_writes"] == 0
    assert image.call("redis", "recover") == {"durable": False, "restored": 0}


@pytest.mark.parametrize("backend", ["none", "mpk-shared", "cheri"])
def test_reboot_recovery_restores_store(backend):
    medium = DiskMedium()
    entries = [
        (b"alpha", b"first value"),
        (b"beta", b""),
        (b"gamma", bytes(range(1, 200))),
        (b"delta", b"rewritten"),
    ]
    image = build_durable(medium, backend)
    image.call("kv", "set_flush_policy", "every-write")
    drive(
        image,
        set_payloads([(b"delta", b"old")] + entries),
    )
    run_redis_phase(image, [b"DEL beta\n"], expect_prefix=b":1")

    # Reboot: fresh image, same medium, recover on boot.
    fresh = build_durable(medium, backend)
    report = fresh.call("redis", "recover")
    assert report["durable"] is True
    assert report["restored"] == 3  # beta deleted
    app = fresh.lib("redis")
    assert app.value_of(b"alpha") == b"first value"
    assert app.value_of(b"gamma") == bytes(range(1, 200))
    assert app.value_of(b"delta") == b"rewritten"
    assert app.value_of(b"beta") is None
    assert fresh.call("redis", "dbsize") == 3


def test_recovered_store_serves_gets():
    medium = DiskMedium()
    image = build_durable(medium)
    image.call("kv", "set_flush_policy", "every-write")
    drive(image, set_payloads([(b"served", b"after-reboot")]))

    fresh = build_durable(medium)
    fresh.call("redis", "recover")
    start_redis(fresh)
    run_redis_phase(
        fresh, [b"GET served\n"], expect_prefix=b"$12\nafter-reboot"
    )


# --- satellite regression: truncated dumps must not corrupt the restore ------


def _vfs_image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "vfs", "redis"],
            compartments=[
                ["netstack"],
                ["vfs"],
                ["sched", "alloc", "libc", "redis"],
            ],
            backend="none",
        )
    )


def _write_file(image, path, content):
    from repro.libos.fs.ramfs import O_CREAT, O_TRUNC, O_WRONLY

    staging = image.call("alloc", "malloc_shared", max(64, len(content)))
    space = image.compartment_of("vfs").address_space
    image.machine.dma_write(space, staging, content)
    fd = image.call("vfs", "open", path, O_WRONLY | O_CREAT | O_TRUNC)
    image.call("vfs", "write", fd, staging, len(content))
    image.call("vfs", "close", fd)


def _record(key, value):
    return len(key).to_bytes(2, "big") + key + len(value).to_bytes(4, "big") + value


def test_load_truncated_header_raises_typed_error():
    image = _vfs_image()
    start_redis(image)
    # One good record, then a lone header byte.
    _write_file(image, "/dump", _record(b"ok", b"fine") + b"\x00")
    with pytest.raises(DumpTruncatedError, match="record header"):
        image.call("redis", "load", "/dump")
    # The record before the truncation point was restored.
    assert image.lib("redis").value_of(b"ok") == b"fine"


def test_load_truncated_key_raises_typed_error():
    image = _vfs_image()
    start_redis(image)
    # klen says 5 but only 2 key bytes follow.
    _write_file(image, "/dump", (5).to_bytes(2, "big") + b"ab")
    with pytest.raises(DumpTruncatedError, match="key"):
        image.call("redis", "load", "/dump")
    assert image.call("redis", "dbsize") == 0


def test_load_truncated_value_raises_typed_error():
    image = _vfs_image()
    start_redis(image)
    record = _record(b"key", b"full-value")
    _write_file(image, "/dump", record[:-4])  # cut 4 value bytes
    with pytest.raises(DumpTruncatedError, match="value"):
        image.call("redis", "load", "/dump")
    # The half-read record must NOT appear in the store (pre-fix it
    # appeared with garbage bytes from the stale staging buffer).
    assert image.lib("redis").value_of(b"key") is None
    assert image.call("redis", "dbsize") == 0


def test_load_clean_dump_still_roundtrips():
    image = _vfs_image()
    start_redis(image)
    _write_file(
        image, "/dump", _record(b"a", b"1") + _record(b"b", b"22")
    )
    assert image.call("redis", "load", "/dump") == 2
    assert image.lib("redis").value_of(b"b") == b"22"
