"""httpd streaming path: files larger than the staging buffer."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import populate_files, start_httpd
from repro.libos.net.packet import build_packet, unpack_header


@pytest.fixture
def image():
    img = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "vfs", "httpd"],
            compartments=[
                ["netstack"],
                ["vfs"],
                ["sched", "alloc", "libc", "httpd"],
            ],
            backend="mpk-shared",
        )
    )
    return img


def fetch(image, path, request_count=1):
    """Issue GETs with a raw sink that reassembles streamed responses."""
    app = start_httpd(image)
    netstack = image.lib("netstack")
    queue = [
        build_packet(app.PORT, b"GET %s\n" % path)
        for _ in range(request_count)
    ]
    received = bytearray()

    def source():
        return queue.pop(0) if queue else None

    def sink(frame):
        header = unpack_header(frame)
        received.extend(frame[16 : 16 + header.length])

    netstack.nic.rx_source = source
    netstack.nic.tx_sink = sink
    target = app.hits + app.misses + request_count
    image.run(
        until=lambda: app.hits + app.misses >= target,
        max_switches=500_000,
    )
    assert app.hits + app.misses >= target
    return bytes(received)


def test_large_file_streams_completely(image):
    content = bytes(range(256)) * 64  # 16 KiB > BUF_SIZE and > MSS
    populate_files(image, {"/big": content})
    body = fetch(image, b"/big")
    header = b"200 %d\n" % len(content)
    assert body.startswith(header)
    assert body[len(header) :] == content
    assert image.call("httpd", "httpd_stats")["bytes_served"] == len(content)


def test_streaming_repeats_are_identical(image):
    content = b"stream" * 3000  # 18 KiB
    populate_files(image, {"/repeat": content})
    first = fetch(image, b"/repeat")
    second = fetch(image, b"/repeat")
    assert first == second
    assert content in first
