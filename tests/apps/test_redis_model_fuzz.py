"""Model-based fuzzing of the Redis server (hypothesis).

Random command sequences run against the simulated server and a plain
Python dictionary model side by side; every response and the final
store contents must agree.  This exercises the full path — packets,
stream reassembly, gates, simulated memory — under arbitrary workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BuildConfig, build_image
from repro.apps import ClosedLoopSource, start_redis
from repro.apps.workload import _switch_budget

keys = st.sampled_from([b"k0", b"k1", b"k2", b"key-long-name"])
values = st.binary(min_size=0, max_size=120).filter(lambda v: b"\n" not in v)

commands = st.one_of(
    st.tuples(st.just("SET"), keys, values),
    st.tuples(st.just("GET"), keys),
    st.tuples(st.just("DEL"), keys),
    st.tuples(st.just("EXISTS"), keys),
    st.tuples(st.just("APPEND"), keys, values),
)


def encode(command) -> bytes:
    if command[0] == "SET":
        _, key, value = command
        return b"SET %s %d\n%s" % (key, len(value), value)
    if command[0] == "APPEND":
        _, key, value = command
        return b"APPEND %s %d\n%s" % (key, len(value), value)
    return b"%s %s\n" % (command[0].encode(), command[1])


def model_response(store: dict, command) -> bytes:
    kind = command[0]
    if kind == "SET":
        store[command[1]] = command[2]
        return b"+OK\n"
    if kind == "GET":
        value = store.get(command[1])
        if value is None:
            return b"$-1\n"
        return b"$%d\n%s" % (len(value), value)
    if kind == "DEL":
        existed = command[1] in store
        store.pop(command[1], None)
        return b":%d\n" % (1 if existed else 0)
    if kind == "EXISTS":
        return b":%d\n" % (1 if command[1] in store else 0)
    if kind == "APPEND":
        store[command[1]] = store.get(command[1], b"") + command[2]
        return b":%d\n" % len(store[command[1]])
    raise AssertionError(kind)


@settings(max_examples=25, deadline=None)
@given(script=st.lists(commands, min_size=1, max_size=25))
def test_server_matches_dict_model(script):
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "redis"]],
            backend="mpk-shared",
        )
    )
    app = start_redis(image)
    payloads = [encode(command) for command in script]
    source = ClosedLoopSource(app.PORT, payloads, window=1)
    responses = []
    netstack = image.lib("netstack")
    netstack.nic.rx_source = source.source
    netstack.nic.tx_sink = lambda frame: (
        source.sink(frame),
        responses.append(source.last_response),
    )
    image.run(
        until=lambda: source.done, max_switches=_switch_budget(len(script))
    )
    assert source.done

    model: dict = {}
    expected = [model_response(model, command) for command in script]
    assert responses == expected
    # The final store contents agree byte-for-byte.
    assert image.call("redis", "dbsize") == len(model)
    for key, value in model.items():
        assert image.lib("redis").value_of(key) == value
