"""RESP2 framing edge cases and the RESP-driven rediserver.

Satellite coverage: frames split at every byte boundary across recv
calls, pipelined command bursts, oversized bulk strings rejected with a
typed error — plus the end-to-end path (an external-style RESP client
driving the server over the simulated wire) and the INCR/APPEND
durability regression (an acked INCR survives crash→recover).
"""

from collections import deque

import pytest

from repro import BuildConfig, build_image
from repro.apps import resp, start_redis
from repro.apps.workload import run_redis_phase
from repro.libos.blk.blkdev import DiskMedium
from repro.libos.net.packet import build_packet, unpack_header

# --- pure framing: encoding ---------------------------------------------------


def test_encode_command_bulk_array():
    frame = resp.encode_command(b"SET", "key0", 42)
    assert frame == b"*3\r\n$3\r\nSET\r\n$4\r\nkey0\r\n$2\r\n42\r\n"


def test_encode_reply_helpers():
    assert resp.encode_simple(b"OK") == b"+OK\r\n"
    assert resp.encode_error(b"ERR nope") == b"-ERR nope\r\n"
    assert resp.encode_integer(-7) == b":-7\r\n"
    assert resp.encode_bulk(b"hi") == b"$2\r\nhi\r\n"
    assert resp.encode_bulk(None) == b"$-1\r\n"


# --- pure framing: request parsing -------------------------------------------


def test_parse_array_split_at_every_byte_boundary():
    frame = resp.encode_command(b"SET", b"key", b"value-bytes")
    for cut in range(len(frame)):
        assert resp.parse_array(frame[:cut]) is None, cut
    args, offsets, consumed = resp.parse_array(frame)
    assert args == [b"SET", b"key", b"value-bytes"]
    assert consumed == len(frame)
    # Offsets point at the argument bytes inside the parsed buffer
    # (the zero-copy contract the server's journal path relies on).
    for arg, offset in zip(args, offsets):
        assert frame[offset : offset + len(arg)] == arg


def test_parse_array_pipelined_burst():
    frames = [
        resp.encode_command(b"SET", b"k%d" % index, b"v%d" % index)
        for index in range(20)
    ] + [resp.encode_command(b"GET", b"k3")]
    raw = b"".join(frames)
    pos = 0
    parsed = []
    while pos < len(raw):
        args, _, pos = resp.parse_array(raw, pos)
        parsed.append(args)
    assert len(parsed) == 21
    assert parsed[0] == [b"SET", b"k0", b"v0"]
    assert parsed[-1] == [b"GET", b"k3"]


def test_parse_array_oversized_bulk_rejected_with_typed_error():
    with pytest.raises(resp.RespError, match="exceeds"):
        resp.parse_array(
            resp.encode_command(b"SET", b"k", b"x" * 128), max_bulk=64
        )
    # Rejected from the header alone — before the payload even arrives.
    with pytest.raises(resp.RespError, match="exceeds"):
        resp.parse_array(b"*2\r\n$3\r\nSET\r\n$999999\r\n")


def test_parse_array_malformed_frames_raise():
    with pytest.raises(resp.RespError, match="bad length header"):
        resp.parse_array(b"*x\r\n")
    with pytest.raises(resp.RespError, match="element count"):
        resp.parse_array(b"*0\r\n")
    with pytest.raises(resp.RespError, match="null bulk"):
        resp.parse_array(b"*1\r\n$-1\r\n")
    with pytest.raises(resp.RespError, match="not CRLF-terminated"):
        resp.parse_array(b"*1\r\n$2\r\nabXX")
    with pytest.raises(resp.RespError, match="unterminated"):
        resp.parse_array(b"*1" + b"1" * 40)


# --- pure framing: reply parsing ---------------------------------------------

_REPLY_STREAM = (
    b"+OK\r\n"
    b":42\r\n"
    b"$5\r\nhello\r\n"
    b"$-1\r\n"
    b"-ERR boom\r\n"
    b"*2\r\n$1\r\na\r\n:7\r\n"
    b"$0\r\n\r\n"
)
_REPLY_VALUES = [
    b"OK",
    42,
    b"hello",
    None,
    resp.ErrorReply(b"ERR boom"),
    [b"a", 7],
    b"",
]


def test_reply_parser_single_feed():
    parser = resp.ReplyParser()
    assert parser.feed(_REPLY_STREAM) == _REPLY_VALUES
    assert parser.pending_bytes == 0


def test_reply_parser_byte_at_a_time():
    parser = resp.ReplyParser()
    replies = []
    for index in range(len(_REPLY_STREAM)):
        replies.extend(parser.feed(_REPLY_STREAM[index : index + 1]))
    assert replies == _REPLY_VALUES
    assert parser.pending_bytes == 0


def test_reply_parser_split_at_every_boundary():
    for cut in range(len(_REPLY_STREAM) + 1):
        parser = resp.ReplyParser()
        replies = parser.feed(_REPLY_STREAM[:cut])
        replies.extend(parser.feed(_REPLY_STREAM[cut:]))
        assert replies == _REPLY_VALUES, cut


def test_reply_parser_oversized_bulk_rejected():
    parser = resp.ReplyParser(max_bulk=16)
    with pytest.raises(resp.RespError, match="exceeds"):
        parser.feed(b"$1024\r\n")


# --- the server end to end ---------------------------------------------------


def _volatile_image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "redis"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "redis"]],
            backend="none",
        )
    )


def _drive_raw(image, chunks, expect_replies, port=6379):
    """Push raw byte chunks at the server; collect raw reply payloads.

    Unlike :class:`ClosedLoopSource` this does not pair requests with
    replies, so a single command may be split across many packets (and
    therefore across many server ``recv`` calls).
    """
    netstack = image.lib("netstack")
    queue = deque(chunks)
    replies = []
    state = {"seq": 0}

    def source():
        if not queue:
            return None
        payload = queue.popleft()
        packet = build_packet(port, payload, seq=state["seq"])
        state["seq"] += len(payload)
        return packet

    def sink(frame):
        header = unpack_header(frame)
        replies.append(frame[16 : 16 + header.length])

    netstack.nic.rx_source = source
    netstack.nic.tx_sink = sink
    image.run(
        until=lambda: len(replies) >= expect_replies, max_switches=500_000
    )
    assert len(replies) >= expect_replies
    return replies


def test_resp_commands_end_to_end():
    image = _volatile_image()
    start_redis(image)
    commands = [
        resp.encode_command(b"PING"),
        resp.encode_command(b"SET", b"color", b"blue"),
        resp.encode_command(b"GET", b"color"),
        resp.encode_command(b"EXISTS", b"color"),
        resp.encode_command(b"INCR", b"hits"),
        resp.encode_command(b"INCR", b"hits"),
        resp.encode_command(b"APPEND", b"color", b"-sky"),
        resp.encode_command(b"GET", b"color"),
        resp.encode_command(b"DEL", b"color"),
        resp.encode_command(b"GET", b"color"),
        resp.encode_command(b"BOGUS", b"x"),
    ]
    raw_replies = _drive_raw(image, commands, len(commands))
    parser = resp.ReplyParser()
    values = parser.feed(b"".join(raw_replies))
    assert values == [
        b"PONG",
        b"OK",
        b"blue",
        1,
        1,
        2,
        8,
        b"blue-sky",
        1,
        None,
        resp.ErrorReply(b"ERR"),
    ]


def test_resp_frames_split_across_recv_calls():
    """Every split point of a command parses once the rest arrives."""
    image = _volatile_image()
    start_redis(image)
    chunks = []
    count = 0
    probe = resp.encode_command(b"SET", b"kXX", b"val")
    for cut in range(1, len(probe)):
        frame = resp.encode_command(b"SET", b"k%02d" % (cut % 50), b"val")
        chunks.append(frame[:cut])
        chunks.append(frame[cut:])
        count += 1
    raw_replies = _drive_raw(image, chunks, count)
    assert b"".join(raw_replies) == b"+OK\r\n" * count


def test_resp_pipelined_burst_single_packet():
    image = _volatile_image()
    start_redis(image)
    burst = b"".join(
        resp.encode_command(b"SET", b"p%d" % index, b"v") for index in range(8)
    ) + b"".join(
        resp.encode_command(b"GET", b"p%d" % index) for index in range(8)
    )
    raw_replies = _drive_raw(image, [burst], 16)
    values = resp.ReplyParser().feed(b"".join(raw_replies))
    assert values == [b"OK"] * 8 + [b"v"] * 8


def test_text_and_resp_interleave_on_one_connection():
    image = _volatile_image()
    start_redis(image)
    raw_replies = _drive_raw(
        image,
        [
            b"SET mixed 3\nxyz",
            resp.encode_command(b"GET", b"mixed"),
            b"GET mixed\n",
        ],
        3,
    )
    assert b"".join(raw_replies) == b"+OK\n$3\r\nxyz\r\n$3\nxyz"


def test_oversized_resp_command_gets_typed_error_reply():
    image = _volatile_image()
    start_redis(image)
    # Claims a bulk bigger than the server will ever buffer: rejected
    # from the header, buffer drained, one -ERR back.
    raw_replies = _drive_raw(image, [b"*2\r\n$3\r\nGET\r\n$40000\r\n"], 1)
    assert raw_replies[0] == b"-ERR\r\n"
    stats = image.call("redis", "redis_stats")
    assert stats["errors"] == 1


def test_closed_loop_workload_speaks_resp():
    from repro.apps.workload import make_get_payloads, make_set_payloads

    image = _volatile_image()
    start_redis(image)
    sets = run_redis_phase(
        image, make_set_payloads(12, 24, keyspace=6), expect_prefix=b"+OK\r\n"
    )
    assert sets.requests == 12
    gets = run_redis_phase(
        image, make_get_payloads(12, 6), expect_prefix=b"$24\r\n"
    )
    assert gets.requests == 12


# --- satellite regression: acked INCR/APPEND survive crash→recover -----------


def _build_durable(medium):
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "blk", "kv", "redis"],
            compartments=[
                ["netstack"],
                ["blk", "kv"],
                ["sched", "alloc", "libc", "redis"],
            ],
            backend="none",
        )
    )
    image.lib("blk").attach_medium(medium)
    image.call("kv", "set_flush_policy", "every-write")
    return image


def test_acked_incr_survives_crash_recover():
    medium = DiskMedium()
    image = _build_durable(medium)
    start_redis(image)
    run_redis_phase(
        image,
        [resp.encode_command(b"INCR", b"counter") for _ in range(3)],
        expect_prefix=b":",
    )
    assert image.call("redis", "redis_stats")["kv_writes"] == 3

    # "Crash": abandon the image, reboot against the same medium.
    fresh = _build_durable(medium)
    report = fresh.call("redis", "recover")
    assert report["durable"] is True
    assert fresh.lib("redis").value_of(b"counter") == b"3"


def test_acked_append_survives_crash_recover():
    medium = DiskMedium()
    image = _build_durable(medium)
    start_redis(image)
    run_redis_phase(
        image,
        [
            resp.encode_command(b"APPEND", b"log", b"one,"),
            resp.encode_command(b"APPEND", b"log", b"two"),
        ],
        expect_prefix=b":",
    )

    fresh = _build_durable(medium)
    fresh.call("redis", "recover")
    assert fresh.lib("redis").value_of(b"log") == b"one,two"


def test_incr_after_recovery_continues_sequence():
    medium = DiskMedium()
    image = _build_durable(medium)
    start_redis(image)
    run_redis_phase(
        image, [b"INCR seq\n", b"INCR seq\n"], expect_prefix=b":"
    )

    fresh = _build_durable(medium)
    fresh.call("redis", "recover")
    start_redis(fresh)
    run_redis_phase(fresh, [b"INCR seq\n"], expect_prefix=b":3")
    assert fresh.lib("redis").value_of(b"seq") == b"3"
