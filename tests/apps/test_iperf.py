"""Functional tests for the iperf application and its runner."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.apps.workload import IperfSource
from repro.libos.net.packet import MSS, unpack_header


@pytest.fixture
def image():
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "iperf"],
            compartments=[["netstack"], ["sched", "alloc", "libc", "iperf"]],
            backend="none",
        )
    )


def test_iperf_source_generates_exact_stream():
    source = IperfSource(5001, 10_000, chunk=1000)
    packets = []
    while True:
        packet = source()
        if packet is None:
            break
        packets.append(packet)
    assert len(packets) == 10
    total = sum(unpack_header(p).length for p in packets)
    assert total == 10_000
    assert source.remaining == 0


def test_iperf_source_chunk_validation():
    with pytest.raises(ValueError):
        IperfSource(1, 100, chunk=0)
    with pytest.raises(ValueError):
        IperfSource(1, 100, chunk=MSS + 1)


def test_run_iperf_counts_every_byte(image):
    total = 200_000
    result = run_iperf(image, 2048, total)
    assert result.payload_bytes == total
    app = image.lib("iperf")
    assert app.received == total
    assert app.done
    assert result.throughput_mbps > 0


def test_run_iperf_is_deterministic():
    results = []
    for _ in range(2):
        image = build_image(
            BuildConfig(
                libraries=["libc", "netstack", "iperf"],
                compartments=[
                    ["netstack"],
                    ["sched", "alloc", "libc", "iperf"],
                ],
                backend="mpk-shared",
            )
        )
        results.append(run_iperf(image, 1024, 1 << 17).elapsed_ns)
    assert results[0] == results[1]


def test_sequential_measurements_use_fresh_ports(image):
    first = run_iperf(image, 512, 50_000)
    second = run_iperf(image, 512, 50_000)
    assert first.elapsed_ns > 0 and second.elapsed_ns > 0
    stats = image.call("netstack", "net_stats")
    assert stats["open_sockets"] == 2


def test_bigger_buffers_are_not_slower(image):
    small = run_iperf(image, 64, 1 << 17)
    large = run_iperf(image, 65536, 1 << 17)
    assert large.throughput_mbps >= small.throughput_mbps


def test_server_validates_parameters(image):
    app = image.lib("iperf")
    with pytest.raises(ValueError):
        app.make_server(1, 0, 100)
    with pytest.raises(ValueError):
        app.make_server(1, 100, 0)


def test_iperf_stats_export(image):
    run_iperf(image, 1024, 100_000)
    stats = image.call("iperf", "iperf_stats")
    assert stats["received"] == 100_000
    assert stats["done"] == 1
    assert stats["recv_calls"] > 0
