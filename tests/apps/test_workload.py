"""Unit tests for the closed-loop workload source."""

import pytest

from repro.apps.workload import ClosedLoopSource
from repro.libos.net.packet import MSS, build_packet, unpack_header


def test_window_limits_outstanding():
    source = ClosedLoopSource(80, [b"a", b"b", b"c"], window=2)
    assert source.source() is not None
    assert source.source() is not None
    assert source.source() is None  # window full
    # A response opens a slot.
    source.sink(build_packet(40000, b"+OK\n", src_port=80))
    assert source.source() is not None
    assert source.source() is None  # queue drained + window full


def test_done_tracks_responses():
    source = ClosedLoopSource(80, [b"x"], window=1)
    assert not source.done
    source.source()
    source.sink(build_packet(40000, b"resp", src_port=80))
    assert source.done
    assert source.responses == 1
    assert source.response_bytes == 4
    assert source.last_response == b"resp"


def test_prefix_validation():
    source = ClosedLoopSource(80, [b"x", b"y"], window=2, expect_prefix=b"+")
    source.source()
    source.source()
    source.sink(build_packet(40000, b"+OK", src_port=80))
    source.sink(build_packet(40000, b"-ERR", src_port=80))
    assert source.bad_responses == 1


def test_sequence_numbers_advance():
    source = ClosedLoopSource(80, [b"aaaa", b"bb"], window=2)
    first = unpack_header(source.source())
    second = unpack_header(source.source())
    assert second.seq == first.seq + 4


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ClosedLoopSource(80, [], window=0)
    with pytest.raises(ValueError):
        ClosedLoopSource(80, [b"z" * (MSS + 1)])
