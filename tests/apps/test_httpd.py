"""Functional tests for the static-file HTTP-style server."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import populate_files, run_closed_loop, start_httpd

LIBS = ["libc", "netstack", "vfs", "httpd"]
FILES = {
    "/index.html": b"<html>hello flexos</html>",
    "/empty": b"",
    "/data.bin": bytes(range(200)),
}


def build(backend="none", groups=None):
    groups = groups or [
        ["netstack"],
        ["vfs"],
        ["sched", "alloc", "libc", "httpd"],
    ]
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=groups, backend=backend)
    )
    populate_files(image, FILES)
    return image


def serve(image, requests, window=4):
    start_httpd(image)
    responses = []
    netstack = image.lib("netstack")
    from repro.apps.workload import ClosedLoopSource, _switch_budget

    source = ClosedLoopSource(image.lib("httpd").PORT, requests, window=window)
    netstack.nic.rx_source = source.source
    netstack.nic.tx_sink = lambda frame: (
        source.sink(frame),
        responses.append(source.last_response),
    )
    image.run(until=lambda: source.done, max_switches=_switch_budget(len(requests)))
    assert source.done
    return responses


def test_get_existing_file():
    image = build()
    responses = serve(image, [b"GET /index.html\n"])
    assert responses == [b"200 25\n<html>hello flexos</html>"]
    stats = image.call("httpd", "httpd_stats")
    assert stats["hits"] == 1
    assert stats["bytes_served"] == 25


def test_get_missing_file_404():
    image = build()
    responses = serve(image, [b"GET /nope\n"])
    assert responses == [b"404\n"]
    assert image.call("httpd", "httpd_stats")["misses"] == 1


def test_empty_file():
    image = build()
    responses = serve(image, [b"GET /empty\n"])
    assert responses == [b"200 0\n"]


def test_binary_content_integrity():
    image = build()
    responses = serve(image, [b"GET /data.bin\n"])
    assert responses == [b"200 200\n" + bytes(range(200))]


def test_bad_request():
    image = build()
    responses = serve(image, [b"POST /x\n"])
    assert responses == [b"400\n"]
    assert image.call("httpd", "httpd_stats")["bad_requests"] == 1


def test_pipelined_requests():
    image = build()
    responses = serve(
        image,
        [b"GET /index.html\n", b"GET /nope\n", b"GET /data.bin\n"],
        window=3,
    )
    assert responses[0].startswith(b"200 25\n")
    assert responses[1] == b"404\n"
    assert responses[2].startswith(b"200 200\n")


@pytest.mark.parametrize("backend", ["mpk-shared", "cheri", "vm-rpc"])
def test_httpd_under_every_isolation_backend(backend):
    """Three trust domains per request, identical results everywhere."""
    image = build(backend)
    responses = serve(image, [b"GET /index.html\n"] * 5)
    assert responses == [b"200 25\n<html>hello flexos</html>"] * 5


def test_closed_loop_runner_measures_httpd():
    image = build("mpk-shared")
    start_httpd(image)
    result = run_closed_loop(
        image,
        image.lib("httpd").PORT,
        [b"GET /index.html\n"] * 50,
        window=8,
        expect_prefix=b"200",
    )
    assert result.requests == 50
    assert result.mreq_s > 0


def test_isolation_slows_httpd_but_preserves_results():
    flat = build(
        "none",
        [["netstack", "vfs", "sched", "alloc", "libc", "httpd"]],
    )
    isolated = build("mpk-switched")
    for image in (flat, isolated):
        start_httpd(image)
    requests = [b"GET /data.bin\n"] * 100

    def rate(image):
        return run_closed_loop(
            image, image.lib("httpd").PORT, requests, window=8,
            expect_prefix=b"200",
        )

    flat_result = rate(flat)
    isolated_result = rate(isolated)
    assert flat_result.payload_bytes == isolated_result.payload_bytes
    assert flat_result.mreq_s > isolated_result.mreq_s
