"""Redis persistence (RDB-style dump) over the vfs micro-library."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import start_redis
from repro.apps.workload import run_redis_phase


def build(backend="none", groups=None):
    groups = groups or [
        ["netstack"],
        ["vfs"],
        ["sched", "alloc", "libc", "redis"],
    ]
    return build_image(
        BuildConfig(
            libraries=["libc", "netstack", "vfs", "redis"],
            compartments=groups,
            backend=backend,
        )
    )


def populate(image, entries):
    start_redis(image)
    payloads = [
        b"SET %s %d\n" % (key, len(value)) + value for key, value in entries
    ]
    run_redis_phase(image, payloads, window=4, expect_prefix=b"+OK")


@pytest.mark.parametrize("backend", ["none", "mpk-shared"])
def test_save_load_roundtrip(backend):
    entries = [
        (b"alpha", b"first value"),
        (b"beta", b""),
        (b"gamma", bytes(range(1, 200))),
    ]
    image = build(backend)
    populate(image, entries)
    assert image.call("redis", "save", "/dump.rdb") == 3
    assert image.call("vfs", "stat", "/dump.rdb")["size"] > 0

    # A fresh image restores the exact store from the file content —
    # transplant the dump by copying the simulated file bytes.
    dump_fd = image.call("vfs", "open", "/dump.rdb")
    size = image.call("vfs", "fstat", dump_fd)["size"]
    staging = image.call("alloc", "malloc_shared", max(64, size))
    image.call("vfs", "read", dump_fd, staging, size)
    space = image.compartment_of("vfs").address_space
    dump_bytes = image.machine.dma_read(space, staging, size)

    fresh = build(backend)
    staging2 = fresh.call("alloc", "malloc_shared", max(64, size))
    space2 = fresh.compartment_of("vfs").address_space
    fresh.machine.dma_write(space2, staging2, dump_bytes)
    from repro.libos.fs.ramfs import O_CREAT, O_WRONLY

    fd = fresh.call("vfs", "open", "/dump.rdb", O_WRONLY | O_CREAT)
    fresh.call("vfs", "write", fd, staging2, size)
    fresh.call("vfs", "close", fd)
    start_redis(fresh)
    assert fresh.call("redis", "load", "/dump.rdb") == 3
    assert fresh.call("redis", "dbsize") == 3
    app = fresh.lib("redis")
    for key, value in entries:
        assert app.value_of(key) == value


def test_load_overwrites_existing_keys():
    image = build()
    populate(image, [(b"k", b"old")])
    image.call("redis", "save", "/snap")
    populate(image, [(b"k", b"newer-value")])
    assert image.lib("redis").value_of(b"k") == b"newer-value"
    assert image.call("redis", "load", "/snap") == 1
    assert image.lib("redis").value_of(b"k") == b"old"
    assert image.call("redis", "dbsize") == 1


def test_save_empty_store():
    image = build()
    start_redis(image)
    assert image.call("redis", "save", "/empty") == 0
    assert image.call("redis", "load", "/empty") == 0


def test_persistence_crosses_isolation_boundaries():
    """redis → vfs is a gated MPK crossing; blocks stay vfs-private."""
    image = build("mpk-shared")
    populate(image, [(b"secret", b"file-system-held")])
    image.call("redis", "save", "/d")
    from repro.machine.faults import ProtectionFault

    # The file's blocks live in the vfs compartment's private heap:
    # redis cannot read them directly, only through the API.
    vfs = image.lib("vfs")
    block = vfs._inodes["/d"].blocks[0]
    image.machine.cpu.push_context(
        image.compartment_of("redis").make_context("redis")
    )
    try:
        with pytest.raises(ProtectionFault):
            image.machine.load(block, 16)
    finally:
        image.machine.cpu.pop_context()
