"""CHERI capability backend: isolation, delegation, revocation."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.gates import make_channel
from repro.gates.cheri import CHERIGate
from repro.machine.faults import GateError, ProtectionFault

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


@pytest.fixture
def image():
    return build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="cheri")
    )


def test_cheri_gates_wired(image):
    channel = image.lib("iperf").stub("netstack")._channel
    assert isinstance(channel, CHERIGate)
    assert image.compartments[0].capabilities is not None
    assert image.compartments[0].pkey is None  # no MPK keys involved


def test_cheri_blocks_foreign_access(image):
    victim = image.compartment_of("sched").alloc_region(64)
    context = image.compartment_of("netstack").make_context("hijacked")
    image.machine.cpu.push_context(context)
    try:
        with pytest.raises(ProtectionFault, match="no capability"):
            image.machine.store(victim, b"pwned")
        with pytest.raises(ProtectionFault):
            image.machine.load(victim, 8)
    finally:
        image.machine.cpu.pop_context()


def test_cheri_allows_own_and_shared(image):
    compartment = image.compartment_of("netstack")
    own = compartment.alloc_region(64)
    shared = image.call("alloc", "malloc_shared", 64)
    image.machine.cpu.push_context(compartment.make_context())
    try:
        image.machine.store(own, b"mine")
        image.machine.store(shared, b"ours")
    finally:
        image.machine.cpu.pop_context()


def test_delegation_enables_private_buffers(image):
    """The CHERI advantage over MPK: a *private* buffer can be handed
    across the boundary as a bounded capability — no shared heap
    round-trip needed."""
    iperf_comp = image.compartment_of("iperf")
    private_buf = iperf_comp.alloc_region(128)
    machine = image.machine
    machine.cpu.push_context(iperf_comp.make_context("app"))
    try:
        machine.store(private_buf, b"payload-from-private-memory!")
        stub = image.lib("iperf").stub("netstack")
        fd = stub.call("listen", 4242)
        # send() reads the private buffer inside the netstack/LibC
        # domains purely via the delegated capability chain.
        sent = []
        image.lib("netstack").nic.tx_sink = sent.append
        assert stub.call("send", fd, private_buf, 28) == 28
        assert sent[0][16:] == b"payload-from-private-memory!"
    finally:
        machine.cpu.pop_context()


def test_delegation_is_bounded(image):
    """The grant covers exactly the declared buffer, not its neighbours."""
    iperf_comp = image.compartment_of("iperf")
    buf = iperf_comp.alloc_region(4096)
    secret = iperf_comp.alloc_region(64)
    machine = image.machine
    machine.cpu.push_context(iperf_comp.make_context("app"))
    machine.store(secret, b"app secret")
    machine.cpu.pop_context()

    netstack_comp = image.compartment_of("netstack")
    caps = netstack_comp.capabilities.derive()
    caps.grant(buf, 64)
    context = netstack_comp.make_context("granted")
    context.capabilities = caps
    machine.cpu.push_context(context)
    try:
        machine.store(buf, b"within grant")
        with pytest.raises(ProtectionFault):
            machine.load(buf + 64, 8)  # beyond the bound
        with pytest.raises(ProtectionFault):
            machine.load(secret, 8)  # unrelated private memory
    finally:
        machine.cpu.pop_context()


def test_grants_revoked_after_return(image):
    """Once the crossing returns, the callee domain has lost access."""
    iperf_comp = image.compartment_of("iperf")
    private_buf = iperf_comp.alloc_region(64)
    machine = image.machine
    machine.cpu.push_context(iperf_comp.make_context("app"))
    try:
        machine.store(private_buf, b"x" * 32)
        stub = image.lib("iperf").stub("netstack")
        fd = stub.call("listen", 4243)
        image.lib("netstack").nic.tx_sink = lambda frame: None
        stub.call("send", fd, private_buf, 32)
    finally:
        machine.cpu.pop_context()
    # A fresh netstack context (new call, no grant) cannot reach it.
    machine.cpu.push_context(image.compartment_of("netstack").make_context())
    try:
        with pytest.raises(ProtectionFault):
            machine.load(private_buf, 8)
    finally:
        machine.cpu.pop_context()


def test_cheri_end_to_end_iperf(image):
    result = run_iperf(image, 1024, 1 << 17)
    assert result.throughput_mbps > 0
    assert image.stats()["cheri_crossings"] > 0
    assert image.stats()["cap_grants"] > 0


def test_cheri_cheaper_than_mpk_small_buffers():
    def throughput(backend):
        img = build_image(
            BuildConfig(libraries=LIBS, compartments=GROUPS, backend=backend)
        )
        return run_iperf(img, 64, 1 << 17).throughput_mbps

    assert throughput("cheri") > throughput("mpk-shared")


def test_cheri_gate_requires_capability_compartment():
    image = build_image(
        BuildConfig(libraries=LIBS, compartments=GROUPS, backend="mpk-shared")
    )
    with pytest.raises(GateError, match="capability"):
        make_channel(
            "cheri", image.machine, image.lib("iperf"), image.lib("netstack")
        )


def test_cheri_scheduler_crossing_cost(image):
    assert image.scheduler.domain_crossing_ns == pytest.approx(
        image.machine.cost.cheri_crossing_ns
    )
