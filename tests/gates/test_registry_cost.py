"""relative_crossing_cost: the analytic estimate vs the measured gates."""

import pytest

from repro.gates import GATE_KINDS, make_channel, relative_crossing_cost
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export
from repro.machine.capabilities import base_capabilities
from repro.machine.faults import GateError
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys


class PingService(MicroLibrary):
    NAME = "ping"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    @export
    def ping(self, value):
        return value


class PongClient(MicroLibrary):
    NAME = "pong"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def _world_for(kind):
    """Two compartments wired the way ``kind`` needs them."""
    machine = Machine()
    linker = Linker()
    if kind == "vm-rpc":
        comp_a = Compartment(0, "service-comp", machine)
        domain_a = machine.new_vm_domain("a")
        comp_a.vm_domain = domain_a
        comp_a.address_space = domain_a.space
        comp_b = Compartment(1, "client-comp", machine)
        domain_b = machine.new_vm_domain("b")
        comp_b.vm_domain = domain_b
        comp_b.address_space = domain_b.space
    else:
        space = machine.new_address_space("main")
        comp_a = Compartment(0, "service-comp", machine)
        comp_a.address_space = space
        comp_b = Compartment(1, "client-comp", machine)
        comp_b.address_space = space
        if kind.startswith("mpk"):
            comp_a.pkey = 1
            comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
            comp_b.pkey = 2
            comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
        elif kind == "cheri":
            comp_a.capabilities = base_capabilities(comp_a, [])
            comp_b.capabilities = base_capabilities(comp_b, [])
    service = PingService()
    client = PongClient()
    service.install(machine, comp_a, linker)
    client.install(machine, comp_b, linker)
    machine.cpu.push_context(comp_b.make_context("client"))
    return machine, service, client


def _measure(kind):
    machine, service, client = _world_for(kind)
    gate = make_channel(kind, machine, client, service)
    start = machine.cpu.clock_ns
    gate.invoke("ping", (1,))
    return machine.cpu.clock_ns - start


def test_unknown_kind_raises_gate_error():
    with pytest.raises(GateError, match="unknown gate kind"):
        relative_crossing_cost("teleport")
    with pytest.raises(GateError, match="unknown gate kind"):
        relative_crossing_cost("")


def test_none_alias_matches_direct():
    assert relative_crossing_cost("none") == relative_crossing_cost("direct")


def test_every_registered_kind_has_an_estimate():
    for kind in GATE_KINDS:
        assert relative_crossing_cost(kind) > 0


def test_estimate_ordering_agrees_with_measured_crossings():
    """For every backend pair the analytic estimate ranks, the measured
    gates must rank the same way (ties in the estimate are exempt)."""
    kinds = sorted(GATE_KINDS)
    estimated = {kind: relative_crossing_cost(kind) for kind in kinds}
    measured = {kind: _measure(kind) for kind in kinds}
    for a in kinds:
        for b in kinds:
            if estimated[a] < estimated[b]:
                assert measured[a] < measured[b], (
                    f"estimate ranks {a} < {b} "
                    f"({estimated[a]:.1f} < {estimated[b]:.1f} ns) but "
                    f"measured says {measured[a]:.1f} vs {measured[b]:.1f} ns"
                )
