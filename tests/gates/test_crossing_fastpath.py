"""Differential property suite for the crossing-plan fast path.

The plan-compiled fast path (``REPRO_GATEPLAN=1``, the default) must be
*bit-identical* to the original per-call gate path in every simulated
quantity — clock, counters, edge records — because it issues the exact
same charge/counter-write sequence, merely precomputed.  These tests
drive randomized operation traces (sync invokes, faulting invokes,
batched queue submissions, observability toggles mid-trace) through
both paths and diff the full machine state, at channel level across the
four boundary backends and at image level across the six isolation
profiles the benchmarks use (including SH-hardened ones), with tracing
both off and on.
"""

from __future__ import annotations

import random

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_named_workload
from repro.gates import GateOptions, make_channel
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export, export_blocking
from repro.machine.capabilities import base_capabilities
from repro.machine.faults import GateError
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys

BACKENDS = ["mpk-shared", "mpk-switched", "vm-rpc", "cheri"]

#: The six isolation profiles of the acceptance matrix: four hardware
#: backends plus the two SH-hardened deployments.
PROFILES = [
    ("mpk-shared", {}),
    ("mpk-switched", {}),
    ("vm-rpc", {}),
    ("cheri", {}),
    ("mpk-shared", {"netstack": ("asan",)}),  # sh-asan
    ("mpk-shared", {"netstack": ("dfi",)}),  # sh-dfi
]


class SvcLibrary(MicroLibrary):
    NAME = "svc"
    SPEC = "[Memory access] Read(Own); Write(Own)"
    CAP_GRANTS = {"touch": ((0, -64),)}

    @export
    def echo(self, *args):
        return args

    @export
    def touch(self, addr):
        return addr

    @export
    def boom(self):
        raise ValueError("boom")

    @export
    def record_free(self, value):
        return value

    @export_blocking
    def sleepy(self):
        yield
        return "done"


class CallerLibrary(MicroLibrary):
    NAME = "caller"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def make_world(backend: str, gateplan: bool):
    machine = Machine(gateplan=gateplan)
    linker = Linker()
    comp_a = Compartment(0, "svc-comp", machine)
    comp_b = Compartment(1, "caller-comp", machine)
    if backend == "vm-rpc":
        domain_a = machine.new_vm_domain("svc")
        comp_a.vm_domain = domain_a
        comp_a.address_space = domain_a.space
        domain_b = machine.new_vm_domain("caller")
        comp_b.vm_domain = domain_b
        comp_b.address_space = domain_b.space
    else:
        space = machine.new_address_space("main")
        comp_a.address_space = space
        comp_a.pkey = 1
        comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
        comp_b.address_space = space
        comp_b.pkey = 2
        comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    if backend == "cheri":
        comp_a.capabilities = base_capabilities(comp_a, [])
        comp_b.capabilities = base_capabilities(comp_b, [])
    service = SvcLibrary()
    caller = CallerLibrary()
    service.install(machine, comp_a, linker)
    caller.install(machine, comp_b, linker)
    return machine, service, caller


def enter_caller(machine, caller):
    # Push AFTER channels exist: queue-channel construction grants the
    # group-heap pkey to the compartment, and contexts snapshot PKRU.
    machine.cpu.push_context(caller.compartment.make_context("caller"))


def run_trace(backend: str, gateplan: bool, seed: int, toggle_obs: bool):
    """One seeded randomized trace; returns (results, machine state)."""
    machine, service, caller = make_world(backend, gateplan)
    sync = make_channel(backend, machine, caller, service)
    queued = make_channel(
        f"queue:{backend}",
        machine,
        caller,
        service,
        options=GateOptions(queue_batch=4, queue_depth=16),
    )
    enter_caller(machine, caller)
    rng = random.Random(seed)
    results = []
    for _ in range(60):
        op = rng.randrange(7)
        if op == 0:
            args = tuple(rng.randrange(100) for _ in range(rng.randrange(4)))
            results.append(sync.invoke("echo", args))
        elif op == 1:
            results.append(sync.invoke("touch", (rng.randrange(1 << 20),)))
        elif op == 2:
            try:
                sync.invoke("boom", ())
            except ValueError as exc:
                results.append(str(exc))
        elif op == 3:
            results.append(queued.submit("record_free", rng.randrange(50)))
        elif op == 4:
            results.append(queued.flush())
        elif op == 5:
            results.append(
                [(c.ticket, c.fn, c.value) for c in queued.poll()]
            )
        elif op == 6 and toggle_obs:
            # Mid-trace observability flips: the plan must re-specialize
            # on the epoch bump, and the observing path (the slow path)
            # must produce the same simulated numbers as always.
            if rng.randrange(2):
                machine.obs.tracer.enabled = not machine.obs.tracer.enabled
            else:
                metrics = machine.cpu.metrics
                metrics.record_edge_latency = not metrics.record_edge_latency
    machine.obs.tracer.enabled = False
    queued.flush()
    results.append([(c.ticket, c.fn, c.value) for c in queued.poll()])
    snap = machine.cpu.snapshot()
    counters = dict(machine.cpu.metrics.counters)
    return results, snap, counters, service.machine.cpu.clock_ns


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("toggle_obs", [False, True])
@pytest.mark.parametrize("seed", [1, 7])
def test_randomized_traces_bit_identical(backend, toggle_obs, seed):
    """Fast vs slow path: same results, same clock, same counters."""
    fast = run_trace(backend, True, seed, toggle_obs)
    slow = run_trace(backend, False, seed, toggle_obs)
    assert fast[0] == slow[0]  # returned values / errors / completions
    assert fast[1] == slow[1]  # cpu snapshot (clock + machine stats)
    assert fast[2] == slow[2]  # metrics counters
    assert fast[3] == slow[3]  # final clock


@pytest.mark.parametrize("backend", BACKENDS)
def test_blocking_exports_identical_on_both_paths(backend):
    """A plain invoke of a blocking export fails identically."""
    errors = []
    for gateplan in (True, False):
        machine, service, caller = make_world(backend, gateplan)
        channel = make_channel(backend, machine, caller, service)
        enter_caller(machine, caller)
        with pytest.raises(GateError) as excinfo:
            channel.invoke("sleepy", ())
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1]


def test_plan_refreshes_on_observability_epoch_bump():
    machine, service, caller = make_world("mpk-shared", True)
    channel = make_channel("mpk-shared", machine, caller, service)
    enter_caller(machine, caller)
    channel.invoke("echo", (1,))
    plan = channel._plan
    assert plan is not None and plan.hits >= 1
    refreshes = plan.refreshes
    machine.obs.tracer.enabled = True
    channel.invoke("echo", (2,))
    assert plan.refreshes == refreshes + 1
    hits_while_tracing = plan.hits
    channel.invoke("echo", (3,))
    # Observing -> the slow path runs; the plan takes no hits.
    assert plan.hits == hits_while_tracing
    machine.obs.tracer.enabled = False
    channel.invoke("echo", (4,))
    assert plan.hits == hits_while_tracing + 1
    stats = machine.fastpath_stats()["gateplan"]
    assert stats["enabled"] and stats["plans"] >= 1
    assert stats["plan_hits"] >= plan.hits


def test_gateplan_disabled_registers_no_plans():
    machine, service, caller = make_world("mpk-shared", False)
    channel = make_channel("mpk-shared", machine, caller, service)
    enter_caller(machine, caller)
    channel.invoke("echo", (1,))
    assert channel._plan is None
    stats = machine.fastpath_stats()["gateplan"]
    assert not stats["enabled"] and stats["plans"] == 0


def _redis_config(backend: str, hardening: dict) -> BuildConfig:
    return BuildConfig(
        libraries=["libc", "netstack", "vfs", "redis"],
        compartments=[["netstack"], ["vfs"], ["sched", "alloc", "libc", "redis"]],
        backend=backend,
        hardening=dict(hardening),
    )


def _run_profile(backend, hardening, monkeypatch, gateplan: bool):
    monkeypatch.setenv("REPRO_GATEPLAN", "1" if gateplan else "0")
    image = build_image(_redis_config(backend, hardening))
    summary, numbers = run_named_workload(
        image, "redis", {"sets": 24, "gets": 60, "window": 4}
    )
    machine = image.machine
    return numbers, machine.cpu.snapshot(), dict(machine.cpu.metrics.counters)


@pytest.mark.parametrize("backend,hardening", PROFILES)
def test_image_level_simulation_identical(backend, hardening, monkeypatch):
    """End-to-end redis run: six profiles, fast vs slow, identical."""
    fast = _run_profile(backend, hardening, monkeypatch, True)
    slow = _run_profile(backend, hardening, monkeypatch, False)
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]
    assert fast[2] == slow[2]
