"""Channel-protocol conformance: every kind honours one contract.

Parametrized over every channel kind (sync backends plus their
``queue:`` variants) × {plain, guarded, profiled} wrappers, asserting:

- ``invoke``/``submit`` equivalence (same values, uniform Completion
  shape, tickets line up);
- crossing accounting (sync: one crossing per submitted op; queue: one
  doorbell per batch);
- fault translation parity (a containable callee fault surfaces as the
  same ``CompartmentFailure`` whether delivered by raise or by
  completion; ordinary exceptions fail only their own op; unknown
  exports are rejected at submission time on every kind).
"""

import pytest

from repro.gates import GateOptions, make_channel
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export
from repro.machine.capabilities import base_capabilities
from repro.machine.faults import (
    CompartmentFailure,
    GateError,
    ProtectionFault,
)
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys

SYNC_KINDS = [
    "direct",
    "profile",
    "mpk-shared",
    "mpk-switched",
    "vm-rpc",
    "cheri",
]
QUEUE_KINDS = [
    "queue:profile",
    "queue:mpk-shared",
    "queue:mpk-switched",
    "queue:vm-rpc",
    "queue:cheri",
]
ALL_KINDS = SYNC_KINDS + QUEUE_KINDS
VARIANTS = ["plain", "guarded", "profiled"]


class ServiceLibrary(MicroLibrary):
    NAME = "service"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    @export
    def double(self, value):
        return 2 * value

    @export
    def fail(self):
        raise RuntimeError("service exploded")

    @export
    def fault(self):
        raise ProtectionFault(0xDEAD, "write", detail="synthetic")


class ClientLibrary(MicroLibrary):
    NAME = "client"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def make_world(kind):
    """A two-compartment world able to host channels of ``kind``."""
    base = kind.split(":", 1)[1] if kind.startswith("queue:") else kind
    machine = Machine()
    linker = Linker()
    comp_a = Compartment(0, "service-comp", machine)
    comp_b = Compartment(1, "client-comp", machine)
    if base == "vm-rpc":
        domain_a = machine.new_vm_domain("a")
        comp_a.vm_domain = domain_a
        comp_a.address_space = domain_a.space
        domain_b = machine.new_vm_domain("b")
        comp_b.vm_domain = domain_b
        comp_b.address_space = domain_b.space
    elif base == "cheri":
        space = machine.new_address_space("main")
        comp_a.address_space = space
        comp_b.address_space = space
    else:
        space = machine.new_address_space("main")
        comp_a.address_space = space
        comp_a.pkey = 1
        comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
        comp_b.address_space = space
        comp_b.pkey = 2
        comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    service = ServiceLibrary()
    client = ClientLibrary()
    service.install(machine, comp_a, linker)
    client.install(machine, comp_b, linker)
    if base == "cheri":
        comp_a.capabilities = base_capabilities(comp_a, [])
        comp_b.capabilities = base_capabilities(comp_b, [])
    return machine, service, client


def make_conforming(kind, variant):
    """(machine, channel) for one matrix cell, caller context pushed.

    The channel is created *before* the caller context is pushed so
    group-heap side effects (fresh pkeys opened in member PKRU values)
    are visible to the context — the same ordering the builder uses
    (link first, spawn threads later).
    """
    machine, service, client = make_world(kind)
    options = GateOptions(api_guards=(variant == "guarded"))
    channel = make_channel(kind, machine, client, service, options=options)
    if variant == "profiled":
        machine.cpu.metrics.record_edge_latency = True
    machine.cpu.push_context(client.compartment.make_context("client"))
    return machine, channel


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_invoke_returns_value(kind, variant):
    _, channel = make_conforming(kind, variant)
    assert channel.invoke("double", (21,)) == 42


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_submit_matches_invoke(kind, variant):
    """submit → flush → poll returns what invoke returns, uniformly."""
    _, channel = make_conforming(kind, variant)
    expected = channel.invoke("double", (21,))
    ticket = channel.submit("double", 21)
    channel.flush()
    completions = channel.poll()
    assert len(completions) == 1
    completion = completions[0]
    assert completion.ok
    assert completion.value == expected == 42
    assert completion.ticket == ticket
    assert completion.fn == "double"
    assert channel.completions_ready == 0


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_crossing_accounting(kind, variant):
    """Sync: a crossing per op.  Queue: one doorbell per batch."""
    _, channel = make_conforming(kind, variant)
    before = channel.crossings
    for value in (1, 2, 3):
        channel.submit("double", value)
    if kind.startswith("queue:"):
        assert channel.crossings == before  # nothing flushed yet
        assert channel.pending == 3
        assert channel.flush() == 3
        assert channel.crossings == before + 1  # ONE doorbell
    else:
        assert channel.pending == 0
        assert channel.crossings == before + 3
        assert channel.flush() == 0
    assert [c.value for c in channel.poll()] == [2, 4, 6]


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_capabilities_reflect_delivery(kind, variant):
    _, channel = make_conforming(kind, variant)
    caps = channel.capabilities()
    assert "sync" in caps
    if kind.startswith("queue:"):
        assert "async" in caps and channel.supports_async
    else:
        assert "async" not in caps and not channel.supports_async


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_ordinary_error_surface(kind, variant):
    """Sync submit raises like invoke; queue delivers via Completion."""
    _, channel = make_conforming(kind, variant)
    with pytest.raises(RuntimeError, match="service exploded"):
        channel.invoke("fail", ())
    if channel.supports_async:
        ticket = channel.submit("fail")
        channel.flush()
        (completion,) = channel.poll()
        assert completion.ticket == ticket and not completion.ok
        assert isinstance(completion.error, RuntimeError)
    else:
        with pytest.raises(RuntimeError, match="service exploded"):
            channel.submit("fail")


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_unknown_export_rejected_at_submit(kind, variant):
    _, channel = make_conforming(kind, variant)
    with pytest.raises(GateError, match="no export"):
        channel.submit("not_an_export")
    assert channel.pending == 0


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("kind", [k for k in ALL_KINDS if k != "direct"])
def test_fault_translation_parity(kind, variant):
    """Containable faults become the same CompartmentFailure either way.

    (``direct`` is excluded: a same-compartment channel is no
    containment boundary, so the raw fault propagates by design.)
    """
    machine, channel = make_conforming(kind, variant)
    channel.callee_lib.compartment.failure_policy = "isolate"
    if channel.supports_async:
        ticket = channel.submit("fault")
        channel.flush()
        (completion,) = channel.poll()
        assert completion.ticket == ticket
        error = completion.error
    else:
        with pytest.raises(CompartmentFailure) as excinfo:
            channel.invoke("fault", ())
        error = excinfo.value
    assert isinstance(error, CompartmentFailure)
    assert isinstance(error.cause, ProtectionFault)
    assert channel.callee_lib.compartment.failed
