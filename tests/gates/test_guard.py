"""Trust-boundary API guards (paper §5 wrappers)."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.gates.guard import GuardedChannel
from repro.machine.faults import BoundaryViolation

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


def build(api_guards=True, backend="mpk-shared", groups=GROUPS):
    return build_image(
        BuildConfig(
            libraries=LIBS,
            compartments=groups,
            backend=backend,
            api_guards=api_guards,
        )
    )


def test_guards_wrap_only_cross_compartment_edges():
    image = build()
    iperf = image.lib("iperf")
    # iperf → netstack crosses a boundary: guarded.
    assert isinstance(iperf.stub("netstack")._channel, GuardedChannel)
    # iperf → libc stays inside the compartment: bare direct channel.
    assert not isinstance(iperf.stub("libc")._channel, GuardedChannel)


def test_guards_disabled_by_default():
    image = build(api_guards=False)
    assert not isinstance(
        image.lib("iperf").stub("netstack")._channel, GuardedChannel
    )


def test_precondition_rejects_bad_size():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        with pytest.raises(BoundaryViolation, match="port"):
            iperf.stub("netstack").call("listen", 0)
        buf = iperf.stub("alloc").call("malloc_shared", 64)
        fd = iperf.stub("netstack").call("listen", 80)
        with pytest.raises(BoundaryViolation, match="send size"):
            iperf.stub("netstack").call("send", fd, buf, -4)
    finally:
        image.machine.cpu.pop_context()


def test_pointer_check_rejects_private_memory():
    """Confused deputy: passing a netstack-private address as the recv
    buffer would make LibC write into the netstack's domain."""
    image = build()
    iperf = image.lib("iperf")
    private = image.compartment_of("iperf").alloc_region(64)
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        fd = iperf.stub("netstack").call("listen", 80)
        with pytest.raises(BoundaryViolation, match="pointer"):
            iperf.stub("netstack").call("send", fd, private, 16)
    finally:
        image.machine.cpu.pop_context()


def test_pointer_check_accepts_shared_memory():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        shared = iperf.stub("alloc").call("malloc_shared", 64)
        fd = iperf.stub("netstack").call("listen", 80)
        assert iperf.stub("netstack").call("send", fd, shared, 16) == 16
    finally:
        image.machine.cpu.pop_context()


def test_non_integer_pointer_rejected():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        fd = iperf.stub("netstack").call("listen", 80)
        with pytest.raises(BoundaryViolation):
            iperf.stub("netstack").call("send", fd, "not-an-address", 4)
    finally:
        image.machine.cpu.pop_context()


def test_raising_predicate_counts_as_failure():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        # netstack's listen contract indexes args[0]; calling with no
        # args makes the predicate itself raise — treated as a failed
        # check (fail closed).
        with pytest.raises(BoundaryViolation):
            iperf.stub("netstack").call("listen")
    finally:
        image.machine.cpu.pop_context()


def test_guarded_image_still_works_end_to_end():
    image = build()
    result = run_iperf(image, 1024, 1 << 17)
    assert result.throughput_mbps > 0
    stats = image.stats()
    assert stats["boundary_checks"] > 0


def test_guards_cost_throughput():
    plain = run_iperf(build(api_guards=False), 256, 1 << 17).throughput_mbps
    guarded = run_iperf(build(api_guards=True), 256, 1 << 17).throughput_mbps
    assert guarded < plain


def test_guard_counters():
    image = build()
    channel = image.lib("iperf").stub("netstack")._channel
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        channel.invoke("listen", (81,))
        assert channel.checks_performed == 1
        with pytest.raises(BoundaryViolation):
            channel.invoke("listen", (0,))
        assert channel.rejections == 1
    finally:
        image.machine.cpu.pop_context()


def test_blocking_exports_also_guarded():
    image = build()
    netstack = image.lib("netstack")
    app = image.lib("iperf")
    failures = []

    def body():
        stub = app.stub("netstack")
        fd = stub.call("listen", 90)
        private = image.compartment_of("iperf").alloc_region(64)
        try:
            yield from stub.call_gen("recv", fd, private, 64)
        except BoundaryViolation as violation:
            failures.append(violation)

    image.spawn("attacker", body, app)
    image.run(max_switches=100)
    assert len(failures) == 1
