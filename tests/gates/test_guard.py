"""Trust-boundary API guards (paper §5 wrappers)."""

import pytest

from repro import BuildConfig, build_image
from repro.apps import run_iperf
from repro.gates.guard import GuardedChannel
from repro.machine.faults import BoundaryViolation

LIBS = ["libc", "netstack", "iperf"]
GROUPS = [["netstack"], ["sched", "alloc", "libc", "iperf"]]


def build(api_guards=True, backend="mpk-shared", groups=GROUPS):
    return build_image(
        BuildConfig(
            libraries=LIBS,
            compartments=groups,
            backend=backend,
            api_guards=api_guards,
        )
    )


def test_guards_wrap_only_cross_compartment_edges():
    image = build()
    iperf = image.lib("iperf")
    # iperf → netstack crosses a boundary: guarded.
    assert isinstance(iperf.stub("netstack")._channel, GuardedChannel)
    # iperf → libc stays inside the compartment: bare direct channel.
    assert not isinstance(iperf.stub("libc")._channel, GuardedChannel)


def test_guards_disabled_by_default():
    image = build(api_guards=False)
    assert not isinstance(
        image.lib("iperf").stub("netstack")._channel, GuardedChannel
    )


def test_precondition_rejects_bad_size():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        with pytest.raises(BoundaryViolation, match="port"):
            iperf.stub("netstack").call("listen", 0)
        buf = iperf.stub("alloc").call("malloc_shared", 64)
        fd = iperf.stub("netstack").call("listen", 80)
        with pytest.raises(BoundaryViolation, match="send size"):
            iperf.stub("netstack").call("send", fd, buf, -4)
    finally:
        image.machine.cpu.pop_context()


def test_pointer_check_rejects_private_memory():
    """Confused deputy: passing a netstack-private address as the recv
    buffer would make LibC write into the netstack's domain."""
    image = build()
    iperf = image.lib("iperf")
    private = image.compartment_of("iperf").alloc_region(64)
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        fd = iperf.stub("netstack").call("listen", 80)
        with pytest.raises(BoundaryViolation, match="pointer"):
            iperf.stub("netstack").call("send", fd, private, 16)
    finally:
        image.machine.cpu.pop_context()


def test_pointer_check_accepts_shared_memory():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        shared = iperf.stub("alloc").call("malloc_shared", 64)
        fd = iperf.stub("netstack").call("listen", 80)
        assert iperf.stub("netstack").call("send", fd, shared, 16) == 16
    finally:
        image.machine.cpu.pop_context()


def test_non_integer_pointer_rejected():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        fd = iperf.stub("netstack").call("listen", 80)
        with pytest.raises(BoundaryViolation):
            iperf.stub("netstack").call("send", fd, "not-an-address", 4)
    finally:
        image.machine.cpu.pop_context()


def test_raising_predicate_counts_as_failure():
    image = build()
    iperf = image.lib("iperf")
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        # netstack's listen contract indexes args[0]; calling with no
        # args makes the predicate itself raise — treated as a failed
        # check (fail closed).
        with pytest.raises(BoundaryViolation):
            iperf.stub("netstack").call("listen")
    finally:
        image.machine.cpu.pop_context()


def test_guarded_image_still_works_end_to_end():
    image = build()
    result = run_iperf(image, 1024, 1 << 17)
    assert result.throughput_mbps > 0
    stats = image.stats()
    assert stats["boundary_checks"] > 0


def test_guards_cost_throughput():
    plain = run_iperf(build(api_guards=False), 256, 1 << 17).throughput_mbps
    guarded = run_iperf(build(api_guards=True), 256, 1 << 17).throughput_mbps
    assert guarded < plain


def test_guard_counters():
    image = build()
    channel = image.lib("iperf").stub("netstack")._channel
    image.machine.cpu.push_context(
        image.compartment_of("iperf").make_context("app")
    )
    try:
        channel.invoke("listen", (81,))
        assert channel.checks_performed == 1
        with pytest.raises(BoundaryViolation):
            channel.invoke("listen", (0,))
        assert channel.rejections == 1
    finally:
        image.machine.cpu.pop_context()


def test_blocking_exports_also_guarded():
    image = build()
    netstack = image.lib("netstack")
    app = image.lib("iperf")
    failures = []

    def body():
        stub = app.stub("netstack")
        fd = stub.call("listen", 90)
        private = image.compartment_of("iperf").alloc_region(64)
        try:
            yield from stub.call_gen("recv", fd, private, 64)
        except BoundaryViolation as violation:
            failures.append(violation)

    image.spawn("attacker", body, app)
    image.run(max_switches=100)
    assert len(failures) == 1


# --- compiled-check semantics (unit level) ---------------------------------
#
# Check steps are hoisted to construction time; these tests pin the
# semantics that hoisting must preserve: step order (contracts before
# pointer validation), one charge and one counter bump per step, and
# the fallback derivation for fns outside the compiled table.

from repro.gates import make_channel
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys

SHARED_LOW, SHARED_HIGH = 0x7000_0000, 0x7000_1000


class ContractLibrary(MicroLibrary):
    NAME = "contract-svc"
    SPEC = "[Memory access] Read(Own); Write(Own)"
    API_CONTRACTS = {
        "op": [(lambda args: args[0] > 0, "count must be positive")],
    }
    POINTER_PARAMS = {"op": (1,)}

    @export
    def op(self, count, buf):
        return count


class GuardClientLibrary(MicroLibrary):
    NAME = "guard-client"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def make_guarded():
    machine = Machine()
    linker = Linker()
    space = machine.new_address_space("main")
    comp_a = Compartment(0, "svc-comp", machine)
    comp_a.address_space = space
    comp_a.pkey = 1
    comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
    comp_b = Compartment(1, "client-comp", machine)
    comp_b.address_space = space
    comp_b.pkey = 2
    comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    service = ContractLibrary()
    client = GuardClientLibrary()
    service.install(machine, comp_a, linker)
    client.install(machine, comp_b, linker)
    inner = make_channel("mpk-shared", machine, client, service)
    guard = GuardedChannel(
        inner, machine, service, [(SHARED_LOW, SHARED_HIGH)]
    )
    return machine, guard


def test_checks_compiled_at_construction():
    _, guard = make_guarded()
    steps = guard._compiled_checks["op"]
    # Contracts first, then pointer-validation steps — the order the
    # per-call derivation always used.
    assert [is_contract for is_contract, _, _ in steps] == [True, False]


def test_contract_failure_stops_before_pointer_check():
    _, guard = make_guarded()
    with pytest.raises(BoundaryViolation, match="positive"):
        guard._check("op", (-1, SHARED_LOW))
    assert guard.checks_performed == 1  # pointer step never reached
    assert guard.rejections == 1


def test_pointer_rejection_comes_after_contract_charge():
    _, guard = make_guarded()
    with pytest.raises(BoundaryViolation, match="pointer"):
        guard._check("op", (5, 0xDEAD))
    assert guard.checks_performed == 2
    assert guard.rejections == 1


def test_one_charge_and_counter_bump_per_step():
    machine, guard = make_guarded()
    before = machine.cpu.clock_ns
    guard._check("op", (5, SHARED_LOW))
    assert machine.cpu.clock_ns - before == 2 * machine.cost.contract_check_ns
    assert machine.cpu.metrics.counters["boundary_checks"] == 2.0
    assert guard.checks_performed == 2 and guard.rejections == 0


def test_uncontracted_fn_charges_nothing():
    machine, guard = make_guarded()
    before = machine.cpu.clock_ns
    guard._check("mystery", (1, 2, 3))
    assert machine.cpu.clock_ns == before
    assert guard.checks_performed == 0
