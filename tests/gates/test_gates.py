"""Unit tests for the gate implementations and registry."""

import pytest

from repro.gates import (
    GATE_KINDS,
    GateOptions,
    make_channel,
)
from repro.gates.mpk_shared import MPKSharedStackGate
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export, export_blocking
from repro.machine.faults import GateError
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys


class ServiceLibrary(MicroLibrary):
    NAME = "service"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    @export
    def double(self, value):
        return 2 * value

    @export
    def whoami(self):
        return self.machine.cpu.current.label

    @export
    def fail(self):
        raise RuntimeError("service exploded")

    @export_blocking
    def double_slow(self, value):
        yield from ()
        return 2 * value


class ClientLibrary(MicroLibrary):
    NAME = "client"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def make_world(backend="mpk"):
    machine = Machine()
    linker = Linker()
    if backend == "vm":
        comp_a = Compartment(0, "service-comp", machine)
        domain_a = machine.new_vm_domain("a")
        comp_a.vm_domain = domain_a
        comp_a.address_space = domain_a.space
        comp_b = Compartment(1, "client-comp", machine)
        domain_b = machine.new_vm_domain("b")
        comp_b.vm_domain = domain_b
        comp_b.address_space = domain_b.space
    else:
        space = machine.new_address_space("main")
        comp_a = Compartment(0, "service-comp", machine)
        comp_a.address_space = space
        comp_a.pkey = 1
        comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
        comp_b = Compartment(1, "client-comp", machine)
        comp_b.address_space = space
        comp_b.pkey = 2
        comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    service = ServiceLibrary()
    client = ClientLibrary()
    service.install(machine, comp_a, linker)
    client.install(machine, comp_b, linker)
    machine.cpu.push_context(comp_b.make_context("client"))
    return machine, service, client


def drive(gen):
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("unexpected suspension")


@pytest.mark.parametrize(
    "kind", ["direct", "profile", "mpk-shared", "mpk-switched"]
)
def test_gate_invokes_and_returns(kind):
    machine, service, client = make_world()
    gate = make_channel(kind, machine, client, service)
    assert gate.invoke("double", (21,)) == 42
    assert gate.crossings == 1


def test_vm_gate_invokes():
    machine, service, client = make_world("vm")
    gate = make_channel("vm-rpc", machine, client, service)
    assert gate.invoke("double", (5,)) == 10


def test_vm_gate_requires_vm_domain():
    machine, service, client = make_world("mpk")
    with pytest.raises(GateError):
        make_channel("vm-rpc", machine, client, service)


@pytest.mark.parametrize("kind", ["mpk-shared", "mpk-switched", "profile"])
def test_gate_switches_context_and_restores(kind):
    machine, service, client = make_world()
    gate = make_channel(kind, machine, client, service)
    before = machine.cpu.current
    label = gate.invoke("whoami", ())
    assert "service" in label
    assert machine.cpu.current is before
    assert machine.cpu.context_depth == 1


def test_direct_channel_keeps_caller_context():
    machine, service, client = make_world()
    gate = make_channel("direct", machine, client, service)
    assert gate.invoke("whoami", ()) == "client"


def test_gate_restores_context_on_exception():
    machine, service, client = make_world()
    gate = make_channel("mpk-shared", machine, client, service)
    with pytest.raises(RuntimeError, match="service exploded"):
        gate.invoke("fail", ())
    assert machine.cpu.context_depth == 1
    assert machine.cpu.current.label == "client"


def test_blocking_invoke_gen():
    machine, service, client = make_world()
    gate = make_channel("mpk-switched", machine, client, service)
    assert drive(gate.invoke_gen("double_slow", (8,))) == 16
    assert machine.cpu.context_depth == 1


def test_entry_point_enforcement():
    machine, service, client = make_world()
    gate = make_channel("mpk-shared", machine, client, service)
    with pytest.raises(GateError, match="no export"):
        gate.invoke("_private", ())
    with pytest.raises(GateError, match="blocking"):
        gate.invoke("double_slow", (1,))
    with pytest.raises(GateError, match="not a blocking export"):
        next(gate.invoke_gen("double", (1,)))


def test_gate_costs_ordering():
    costs = {}
    for kind in ("direct", "mpk-shared", "mpk-switched"):
        machine, service, client = make_world()
        gate = make_channel(kind, machine, client, service)
        start = machine.cpu.clock_ns
        gate.invoke("double", (1,))
        costs[kind] = machine.cpu.clock_ns - start
    assert costs["direct"] < costs["mpk-shared"] < costs["mpk-switched"]


def test_vm_gate_is_most_expensive():
    machine, service, client = make_world("vm")
    gate = make_channel("vm-rpc", machine, client, service)
    start = machine.cpu.clock_ns
    gate.invoke("double", (1,))
    vm_cost = machine.cpu.clock_ns - start
    assert vm_cost > 2 * machine.cost.vm_notify_ns


def test_register_clearing_option_costs():
    costs = {}
    for clear in (True, False):
        machine, service, client = make_world()
        gate = make_channel(
            "mpk-shared",
            machine,
            client,
            service,
            options=GateOptions(clear_registers=clear),
        )
        start = machine.cpu.clock_ns
        gate.invoke("double", (1,))
        costs[clear] = machine.cpu.clock_ns - start
    assert costs[True] == pytest.approx(
        costs[False] + 2 * machine.cost.reg_clear_ns
    )


def test_switched_gate_charges_arg_copies():
    machine, service, client = make_world()
    shared = make_channel("mpk-shared", machine, client, service)
    switched = make_channel("mpk-switched", machine, client, service)
    start = machine.cpu.clock_ns
    shared.invoke("double", (1,))
    shared_cost = machine.cpu.clock_ns - start
    start = machine.cpu.clock_ns
    switched.invoke("double", (1,))
    switched_cost = machine.cpu.clock_ns - start
    assert switched_cost > shared_cost + 2 * machine.cost.stack_switch_ns - 1


def test_caller_side_instrumentation_runs():
    machine, service, client = make_world()
    calls = []
    machine.cpu.current.profile.call_monitors.append(
        lambda caller, callee, fn: calls.append((caller, callee, fn))
    )
    machine.cpu.current.profile.call_extra_ns = 5.0
    gate = make_channel("direct", machine, client, service)
    gate.invoke("double", (3,))
    assert calls == [("client", "service", "double")]


def test_registry_resolves_all_kinds():
    machine, service, client = make_world()
    for kind in ("direct", "profile", "mpk-shared", "mpk-switched"):
        gate = make_channel(kind, machine, client, service)
        assert gate.KIND == kind
    assert set(GATE_KINDS) == {
        "direct",
        "profile",
        "cheri",
        "mpk-shared",
        "mpk-switched",
        "vm-rpc",
    }
    with pytest.raises(GateError):
        make_channel("teleport", machine, client, service)


def test_make_channel_wraps_boundary_with_guards():
    machine, service, client = make_world()
    options = GateOptions(api_guards=True)
    guarded = make_channel(
        "mpk-shared", machine, client, service, options=options
    )
    assert type(guarded).__name__ == "GuardedChannel"
    assert guarded.inner.KIND == "mpk-shared"
    # Same-compartment direct channels never get guard wrappers.
    direct = make_channel("direct", machine, client, service, options=options)
    assert type(direct).__name__ == "DirectChannel"


def test_direct_instantiation_raises():
    machine, service, client = make_world()
    with pytest.raises(GateError, match="make_channel"):
        MPKSharedStackGate(machine, client, service)
    assert not hasattr(
        __import__("repro.gates", fromlist=["gates"]), "make_gate"
    )


def test_make_channel_emits_no_deprecation_warning(recwarn):
    machine, service, client = make_world()
    make_channel("mpk-shared", machine, client, service)
    assert not [
        w for w in recwarn if issubclass(w.category, DeprecationWarning)
    ]
