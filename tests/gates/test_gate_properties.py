"""Property tests: gate transparency across backends (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import make_channel
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys

ARG = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.none(),
)


class EchoService(MicroLibrary):
    NAME = "echo"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    @export
    def echo(self, *args):
        return args

    @export
    def boom(self):
        raise ValueError("boom")


class Caller(MicroLibrary):
    NAME = "caller"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def make_world():
    machine = Machine()
    space = machine.new_address_space("main")
    comp_a = Compartment(0, "svc", machine)
    comp_a.address_space = space
    comp_a.pkey = 1
    comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
    comp_b = Compartment(1, "cli", machine)
    comp_b.address_space = space
    comp_b.pkey = 2
    comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    service = EchoService()
    caller = Caller()
    linker = Linker()
    service.install(machine, comp_a, linker)
    caller.install(machine, comp_b, linker)
    machine.cpu.push_context(comp_b.make_context("caller"))
    return machine, service, caller


GATES = ["direct", "profile", "mpk-shared", "mpk-switched"]


@settings(max_examples=60, deadline=None)
@given(args=st.lists(ARG, max_size=5).map(tuple))
def test_gates_are_argument_transparent(args):
    """Every backend delivers identical arguments and results."""
    results = []
    for kind in GATES:
        machine, service, caller = make_world()
        gate = make_channel(kind, machine, caller, service)
        results.append(gate.invoke("echo", args))
    assert all(result == args for result in results)


@settings(max_examples=30, deadline=None)
@given(repeats=st.integers(min_value=1, max_value=8))
def test_context_depth_invariant_over_any_call_pattern(repeats):
    """N calls (including failing ones) leave the context stack as found."""
    for kind in GATES:
        machine, service, caller = make_world()
        gate = make_channel(kind, machine, caller, service)
        for index in range(repeats):
            if index % 3 == 2:
                try:
                    gate.invoke("boom", ())
                except ValueError:
                    pass
            else:
                gate.invoke("echo", (index,))
        assert machine.cpu.context_depth == 1
        assert machine.cpu.current.label == "caller"


@settings(max_examples=30, deadline=None)
@given(args=st.lists(ARG, max_size=4).map(tuple))
def test_gate_cost_independent_of_results(args):
    """A gate's crossing cost depends on arity, never on outcomes."""
    machine, service, caller = make_world()
    gate = make_channel("mpk-switched", machine, caller, service)
    start = machine.cpu.clock_ns
    gate.invoke("echo", args)
    first = machine.cpu.clock_ns - start
    start = machine.cpu.clock_ns
    gate.invoke("echo", args)
    second = machine.cpu.clock_ns - start
    assert first == second
