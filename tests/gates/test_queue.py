"""Queue channels: rings, flush policies, crash-mid-batch, wiring.

The conformance matrix (``test_channel_protocol.py``) asserts that
queue channels honour the generic Channel contract; this file covers
what is *specific* to them — the io_uring-style ring mechanics, the
flush policies, group-scoped ring memory, the builder/config wiring,
and the explorer's sync-vs-batched trade-off.
"""

import types

import pytest

from repro import BuildConfig, build_image
from repro.apps import start_redis
from repro.apps.workload import run_redis_phase
from repro.core.config import parse_queue_policy
from repro.core.errors import BuildError
from repro.core.explorer import profiled_cost_fn, queue_recommendations
from repro.gates import GateOptions, QueueChannel, make_channel
from repro.gates.registry import relative_crossing_cost
from repro.libos.compartment import Compartment
from repro.libos.library import Linker, MicroLibrary, export
from repro.machine.faults import (
    CompartmentFailure,
    GateError,
    ProtectionFault,
)
from repro.machine.machine import Machine
from repro.machine.mpk import pkru_for_keys
from repro.obs.profile import WorkloadProfile


class RecorderLibrary(MicroLibrary):
    NAME = "recorder"
    SPEC = "[Memory access] Read(Own); Write(Own)"

    def __init__(self):
        super().__init__()
        self.seen = []

    @export
    def record(self, value):
        self.seen.append(value)
        return value

    @export
    def total(self):
        return sum(self.seen)

    @export
    def fault(self):
        raise ProtectionFault(0xDEAD, "write", detail="synthetic")


class ClientLibrary(MicroLibrary):
    NAME = "client"
    SPEC = "[Memory access] Read(Own); Write(Own)"


def make_world():
    machine = Machine()
    linker = Linker()
    space = machine.new_address_space("main")
    comp_a = Compartment(0, "recorder-comp", machine)
    comp_a.address_space = space
    comp_a.pkey = 1
    comp_a.pkru_value = pkru_for_keys(writable=[1, 14])
    comp_b = Compartment(1, "client-comp", machine)
    comp_b.address_space = space
    comp_b.pkey = 2
    comp_b.pkru_value = pkru_for_keys(writable=[2, 14])
    recorder = RecorderLibrary()
    client = ClientLibrary()
    recorder.install(machine, comp_a, linker)
    client.install(machine, comp_b, linker)
    return machine, recorder, client


def make_queue(options=None, push_context=True):
    machine, recorder, client = make_world()
    channel = make_channel(
        "queue:mpk-shared", machine, client, recorder, options=options
    )
    if push_context:
        machine.cpu.push_context(client.compartment.make_context("client"))
    return machine, recorder, channel


# --- flush policies ----------------------------------------------------------


def test_batch_policy_autoflushes():
    _, recorder, channel = make_queue(GateOptions(queue_batch=4))
    for value in range(3):
        channel.submit("record", value)
    assert channel.pending == 3 and channel.crossings == 0
    channel.submit("record", 3)  # hits queue_batch
    assert channel.pending == 0 and channel.crossings == 1
    assert recorder.seen == [0, 1, 2, 3]


def test_full_ring_forces_flush():
    _, _, channel = make_queue(GateOptions(queue_depth=4, queue_batch=1000))
    for value in range(5):
        channel.submit("record", value)
    # Depth-4 ring: the 5th submission forced a doorbell first.
    assert channel.crossings == 1 and channel.pending == 1


def test_zero_depth_rejected():
    with pytest.raises(GateError, match="queue_depth"):
        make_queue(GateOptions(queue_depth=0))


def test_max_delay_deadline():
    machine, _, channel = make_queue(
        GateOptions(queue_batch=1000, queue_max_delay_ns=500.0)
    )
    assert channel.flush_deadline_ns() is None
    submitted_at = machine.cpu.clock_ns
    channel.submit("record", 1)
    deadline = channel.flush_deadline_ns()
    # The SQE append itself charges a little time first, so the
    # deadline is 500ns past the append, at or after submit entry.
    assert deadline is not None and deadline >= submitted_at + 500.0
    assert channel.flush_if_due() == 0  # deadline not reached
    machine.cpu.charge(deadline - machine.cpu.clock_ns + 1.0)
    assert channel.flush_if_due() == 1
    assert channel.flush_deadline_ns() is None


def test_sync_invoke_flushes_first():
    """Program order: sync calls never overtake queued submissions."""
    _, recorder, channel = make_queue(GateOptions(queue_batch=1000))
    channel.submit("record", 10)
    channel.submit("record", 32)
    assert channel.invoke("total", ()) == 42  # queued ops ran first
    assert recorder.seen == [10, 32]
    assert channel.crossings == 2  # one doorbell + one sync call


def test_close_flushes_and_is_idempotent():
    _, recorder, channel = make_queue(GateOptions(queue_batch=1000))
    channel.submit("record", 7)
    channel.close()
    channel.close()
    assert recorder.seen == [7]


# --- crash-mid-batch ---------------------------------------------------------


def test_crash_mid_batch_aborts_tail_keeps_head():
    _, recorder, channel = make_queue(GateOptions(queue_batch=1000))
    recorder.compartment.failure_policy = "isolate"
    for fn, arg in [("record", (1,)), ("record", (2,)), ("fault", ()), ("record", (3,))]:
        channel.submit(fn, *arg)
    assert channel.flush() == 4
    head_ok, also_ok, crashed, aborted = channel.poll()
    assert head_ok.ok and also_ok.ok
    assert isinstance(crashed.error, CompartmentFailure)
    # The tail op aborted with the SAME failure: the callee domain died
    # mid-batch, so its submission never executed...
    assert aborted.error is crashed.error
    # ...which the callee's state confirms (exactly sync-call prefix).
    assert recorder.seen == [1, 2]
    assert recorder.compartment.failed


def test_propagate_policy_raises_and_restores_batch():
    _, recorder, channel = make_queue(GateOptions(queue_batch=1000))
    assert recorder.compartment.failure_policy == "propagate"
    channel.submit("fault")
    channel.submit("record", 9)
    with pytest.raises(ProtectionFault):
        channel.flush()
    # The doorbell failed wholesale: the batch is still pending, so a
    # caller with a retry policy can flush again.
    assert channel.pending == 2


# --- ring memory is group-scoped ---------------------------------------------


def test_rings_invisible_to_third_compartments():
    machine, recorder, channel = make_queue(push_context=False)
    comp_c = Compartment(2, "bystander", machine)
    comp_c.address_space = recorder.compartment.address_space
    comp_c.pkey = 3
    comp_c.pkru_value = pkru_for_keys(writable=[3, 14])
    # A member (the caller) reads the ring fine...
    machine.cpu.push_context(
        channel.caller_lib.compartment.make_context("client")
    )
    machine.load(channel._sq_base, 8)
    machine.cpu.pop_context()
    # ...a non-member faults: the rings are tagged with a fresh pkey,
    # not the world-shared one.
    machine.cpu.push_context(comp_c.make_context("bystander"))
    with pytest.raises(ProtectionFault):
        machine.load(channel._sq_base, 8)
    machine.cpu.pop_context()
    heap = machine.group_heaps.regions[0]
    assert heap.pkey not in (None, 14)


# --- factory / options validation --------------------------------------------


def test_bare_queue_kind_rejected():
    machine, recorder, client = make_world()
    with pytest.raises(GateError, match="queue:<backend>"):
        make_channel("queue", machine, client, recorder)


def test_queue_over_direct_rejected():
    machine, recorder, client = make_world()
    with pytest.raises(GateError):
        make_channel("queue:direct", machine, client, recorder)


def test_unknown_dict_option_lists_known():
    machine, recorder, client = make_world()
    with pytest.raises(GateError, match="clear_registers"):
        make_channel(
            "mpk-shared", machine, client, recorder, options={"bogus": 1}
        )


def test_inapplicable_option_rejected():
    machine, recorder, client = make_world()
    with pytest.raises(GateError, match="queue_batch"):
        make_channel(
            "mpk-shared",
            machine,
            client,
            recorder,
            options=GateOptions(queue_batch=4),
        )
    with pytest.raises(GateError, match="rpc_max_retries"):
        make_channel(
            "queue:mpk-shared",
            machine,
            client,
            recorder,
            options=GateOptions(rpc_max_retries=9),
        )


def test_queue_options_applicable_on_queue_kinds():
    _, _, channel = make_queue(GateOptions(queue_batch=4, queue_depth=16))
    assert isinstance(channel, QueueChannel)
    assert channel.options.queue_batch == 4


# --- amortised cost model ----------------------------------------------------


@pytest.mark.parametrize("backend", ["mpk-shared", "mpk-switched", "vm-rpc", "cheri"])
def test_relative_cost_amortises_with_batch(backend):
    sync_ns = relative_crossing_cost(backend)
    batched = [
        relative_crossing_cost(f"queue:{backend}", batch=b) for b in (1, 8, 64)
    ]
    assert batched[0] > batched[1] > batched[2]  # monotone in batch size
    # At batch 8 the doorbell is amortised 8x; the ring tax is fixed,
    # so the crossing term drops to sync/8 + ring.
    assert batched[1] < sync_ns or backend == "cheri"
    assert batched[1] == pytest.approx(
        batched[2] - sync_ns / 64 + sync_ns / 8
    )


def test_queue_of_non_boundary_cost_rejected():
    with pytest.raises(GateError):
        relative_crossing_cost("queue:direct")


# --- config / builder wiring -------------------------------------------------


def test_parse_queue_policy():
    assert parse_queue_policy("batch:8") == (8, 0.0)
    assert parse_queue_policy("batch:4,delay:1000") == (4, 1000.0)
    for bad in ("", "batch:x", "batch:0", "delay:5", "batch:2,delay:-1"):
        with pytest.raises(BuildError):
            parse_queue_policy(bad)


def test_config_validates_queue_edges():
    good = BuildConfig(
        libraries=["libc", "blk", "kv"],
        queue_edges={"kv->blk": "batch:8"},
    )
    good.validate()
    assert BuildConfig.from_dict(good.to_dict()).queue_edges == {
        "kv->blk": "batch:8"
    }
    with pytest.raises(BuildError, match="caller->callee"):
        BuildConfig(
            libraries=["libc"], queue_edges={"nope": "batch:2"}
        ).validate()
    with pytest.raises(BuildError, match="not in"):
        BuildConfig(
            libraries=["libc"], queue_edges={"ghost->libc": "batch:2"}
        ).validate()


def build_durable_redis(backend="mpk-shared", queue_edges=None):
    image = build_image(
        BuildConfig(
            libraries=["libc", "netstack", "blk", "kv", "redis"],
            compartments=[
                ["netstack"],
                ["blk"],
                ["kv"],
                ["sched", "alloc", "libc", "redis"],
            ],
            backend=backend,
            queue_edges=queue_edges or {},
        )
    )
    return image


def set_payloads(entries):
    return [
        b"SET %s %d\n" % (key, len(value)) + value for key, value in entries
    ]


def test_builder_wires_queue_edges():
    image = build_durable_redis(queue_edges={"kv->blk": "batch:8"})
    channel = image.lib("kv").stub("blk")._channel
    assert isinstance(channel, QueueChannel)
    assert channel.KIND == "queue:mpk-shared"
    # Other edges keep the plain backend.
    assert image.lib("redis").stub("kv")._channel.KIND == "mpk-shared"


def test_durable_redis_over_queued_journal():
    """SETs ack after the batched journal completes; state is intact."""
    image = build_durable_redis(
        queue_edges={"redis->kv": "batch:4", "kv->blk": "batch:8"}
    )
    start_redis(image)
    assert image.lib("redis")._kv.supports_async
    run_redis_phase(
        image,
        set_payloads([(b"a", b"one"), (b"b", b"two")]),
        window=4,
        expect_prefix=b"+OK",
    )
    stats = image.call("redis", "redis_stats")
    assert stats["kv_writes"] == 2 and stats["errors"] == 0
    assert image.call("kv", "kv_keys") == [b"a", b"b"]
    counters = image.machine.cpu.stats
    assert counters["queue.submitted"] >= 2
    assert counters["queue.doorbells"] >= 1
    assert counters["queue.doorbells"] < counters["queue.submitted"] + 1
    # The compound kind shows up in the crossing report.
    kinds = {
        (caller, callee): kind
        for caller, callee, kind, _ in image.crossing_report()
    }
    assert kinds[("redis", "kv")] == "queue:mpk-shared"
    assert kinds[("kv", "blk")] == "queue:mpk-shared"


def test_batch_one_matches_sync_semantics():
    """Acceptance: batch-1 queueing acks the same state sync does."""
    sync_image = build_durable_redis()
    queued_image = build_durable_redis(
        queue_edges={"redis->kv": "batch:1"}
    )
    payloads = set_payloads(
        [(b"a", b"one"), (b"b", b"two"), (b"a", b"three")]
    ) + [b"DEL b\n", b"GET a\n"]
    for image in (sync_image, queued_image):
        start_redis(image)
        run_redis_phase(image, payloads[:3], window=4, expect_prefix=b"+OK")
        run_redis_phase(image, [payloads[3]], expect_prefix=b":1")
        run_redis_phase(image, [payloads[4]], expect_prefix=b"$5")
    sync_stats = image_stats = None
    sync_stats = sync_image.call("redis", "redis_stats")
    image_stats = queued_image.call("redis", "redis_stats")
    for key in ("sets", "gets", "errors", "responses", "kv_writes"):
        assert sync_stats[key] == image_stats[key], key
    assert sync_image.call("kv", "kv_keys") == queued_image.call(
        "kv", "kv_keys"
    )
    assert sync_image.call("redis", "dbsize") == queued_image.call(
        "redis", "dbsize"
    )


# --- explorer: sync vs batched per edge --------------------------------------


def synthetic_profile(crossings=10_000):
    return WorkloadProfile(
        workload="synthetic",
        params={},
        seed=0,
        backend="mpk-shared",
        libraries=["redis", "kv"],
        compartments=[["redis"], ["kv"]],
        elapsed_ns=1e6,
        edges=[
            {
                "caller": "redis",
                "callee": "kv",
                "kind": "mpk-shared",
                "crossings": crossings,
            },
            {
                "caller": "redis",
                "callee": "alloc",
                "kind": "mpk-shared",
                "crossings": 3,
            },
        ],
        gate_latency_ns={},
        cpu_time_ns={"redis": 5e5, "kv": 5e5},
        alloc_bytes={},
        counters={},
    )


def test_queue_recommendations_flags_hot_edges():
    recs = queue_recommendations(synthetic_profile(), batch=8)
    assert "redis->kv" in recs
    assert recs["redis->kv"]["saved_ns"] > 0
    assert recs["redis->kv"]["queued_ns"] < recs["redis->kv"]["sync_ns"]
    assert "redis->alloc" not in recs  # under min_crossings
    assert queue_recommendations(synthetic_profile(), backend="direct") == {}


def test_profiled_cost_fn_prefers_queue_on_hot_edge():
    profile = synthetic_profile()
    deployment = types.SimpleNamespace(
        coloring={"redis": 0, "kv": 1}, choices={}
    )
    sync_cost = profiled_cost_fn(profile)(deployment)
    queued_fn = profiled_cost_fn(
        profile, queue_edges=["redis->kv"], queue_batch=8
    )
    assert queued_fn(deployment) < sync_cost
    assert "queue[redis->kv]@8" in queued_fn.estimator
    # An explorer choosing by cost therefore selects the queue variant
    # for the hot-crossing profile.
    best = min(
        [("sync", sync_cost), ("queue", queued_fn(deployment))],
        key=lambda pair: pair[1],
    )
    assert best[0] == "queue"
